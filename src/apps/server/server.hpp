// Request-serving workload: N simulated processors drain simulated
// client operations (point reads / point writes / short scans over a
// shared key-value table) from shared task queues with stealing, log
// every write to a shared allocator arena, and bump per-processor
// throughput counters -- the lock/queue/allocator contention mix of a
// server, rather than the loop parallelism of the SPLASH suite. The
// load is deliberately skewed (processor 0's queue gets a double share,
// a hot shard) so stealing is exercised at every scale.
//
// Versions (the paper's restructuring ladder, applied to server data
// structures; each step keeps the previous fixes):
//  * orig      -- packed per-processor stat counters (one page of false
//                 sharing hammered once per op), unpadded queue entries,
//                 packed log records, one global bump allocator under a
//                 lock.
//  * pa        -- P/A class: stat counters padded to a page each, queue
//                 entries and log records padded to cache lines.
//  * ds        -- DS class: per-processor allocator sub-arenas (own
//                 pages, own cursor, no lock; global arena only as spill
//                 fallback) and split private/public task queues.
//  * alg-batch -- Alg class: batched dequeue (TaskQueues::nextBatch)
//                 amortizes lock and queue-line transfers over 8 tasks.
//
// Every version computes identical answers: AppResult::result_hash is a
// commutative digest over per-op results and AppResult::state_hash
// digests the final table plus the multiset of log records, so the
// differential harness can compare platforms bit-for-bit.
#pragma once

#include "core/app.hpp"

namespace rsvm::apps::server {

enum class Variant { Orig, PA, DS, AlgBatch };

/// prm.n = client ops per round, prm.iters = rounds (queues are
/// re-filled, timed, between rounds), prm.block = scan length,
/// prm.seed = op-stream seed. The table holds max(64, n/4) keys.
AppResult run(Platform& plat, const AppParams& prm, Variant v);

AppDesc describe();

}  // namespace rsvm::apps::server
