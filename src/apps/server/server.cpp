#include "apps/server/server.hpp"

#include "apps/common/digest.hpp"
#include "apps/common/task_queue.hpp"
#include "apps/common/zipf.hpp"
#include "runtime/shared.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace rsvm::apps::server {
namespace {

constexpr std::size_t kLineWords = 8;    ///< 64 B / sizeof(int64)
constexpr std::size_t kPageWords = 512;  ///< 4096 B / sizeof(int64)
constexpr std::size_t kStripes = 32;     ///< hot-key lock stripes
constexpr std::size_t kBatch = 8;        ///< alg-batch dequeue size

enum OpType { kRead = 0, kWrite = 1, kScan = 2 };

struct Op {
  OpType type;
  std::size_t key;
  std::int64_t delta = 0;
};

/// The implicit client request for op id i: a pure function of the
/// op-stream word, so the host-side replay recomputes it exactly.
/// Reads and scans touch only the cold half of the table (never
/// written after init), writes only the hot half -- that separation is
/// what makes per-op results independent of scheduling. Key popularity
/// is controlled by `zipf` (AppParams::zipf): 0 keeps the historical
/// uniform pick bit-for-bit, theta > 0 skews toward low key ranks.
Op decodeOp(std::uint64_t h, std::size_t cold, std::size_t hot,
            double zipf) {
  Op o;
  const std::uint64_t t = h % 20;  // 60% read / 25% write / 15% scan
  if (t < 12) {
    o.type = kRead;
    o.key = zipfPick(h >> 8, cold, zipf);
  } else if (t < 17) {
    o.type = kWrite;
    o.key = cold + zipfPick(h >> 8, hot, zipf);
    o.delta = static_cast<std::int64_t>((h >> 32) % 4093) + 1;
  } else {
    o.type = kScan;
    o.key = zipfPick(h >> 8, cold, zipf);
  }
  return o;
}

std::uint64_t opWord(std::uint64_t seed, int i) {
  return splitmix64(seed * 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(i) + 1);
}

/// Shared append-only write log. Orig/PA: one global bump cursor under
/// a lock. DS: per-processor sub-arenas (pages homed at the owner, own
/// cursor word, no lock), with the global arena kept as a locked spill
/// path in case stealing funnels far more writes than expected onto one
/// processor -- the per-proc free-list-with-global-fallback shape of a
/// real allocator.
class LogArena {
 public:
  LogArena(Platform& plat, std::size_t total_cap, std::size_t rec_stride,
           bool per_proc)
      : stride_(rec_stride), per_proc_(per_proc) {
    const int P = plat.nprocs();
    global_ = SharedArray<std::int64_t>(
        plat, std::max<std::size_t>(1, total_cap) * stride_,
        HomePolicy::roundRobin(P));
    cursor_ = Shared<std::int64_t>(plat, HomePolicy::node(0));
    cursor_.raw() = 0;
    lock_ = plat.makeLock();
    if (per_proc_) {
      per_cap_ = total_cap / static_cast<std::size_t>(P) * 2 + 16;
      sub_ = SharedArray<std::int64_t>(
          plat, static_cast<std::size_t>(P) * per_cap_ * stride_,
          HomePolicy{[cap = per_cap_ * stride_, P](std::uint64_t page,
                                                   std::uint64_t) {
            return static_cast<ProcId>(
                std::min<std::uint64_t>(page * kPageWords / cap,
                                        static_cast<std::uint64_t>(P - 1)));
          }},
          4096);
      subcur_ = SharedArray<std::int64_t>(
          plat, static_cast<std::size_t>(P) * kPageWords,
          HomePolicy{[](std::uint64_t page, std::uint64_t) {
            return static_cast<ProcId>(page);
          }},
          4096);
      for (int p = 0; p < P; ++p) {
        subcur_.raw(static_cast<std::size_t>(p) * kPageWords) = 0;
      }
    }
  }

  void append(Ctx& c, std::int64_t op, std::int64_t round, std::int64_t key,
              std::int64_t delta) {
    ++c.stats().allocs;
    if (per_proc_) {
      const auto me = static_cast<std::size_t>(c.id());
      // Own cursor word on an own page: no lock, no sharing.
      const auto cur = static_cast<std::size_t>(
          subcur_.get(c, me * kPageWords));
      if (cur < per_cap_) {
        subcur_.set(c, me * kPageWords, static_cast<std::int64_t>(cur + 1));
        write(c, sub_, (me * per_cap_ + cur) * stride_, op, round, key,
              delta);
        return;
      }
    }
    c.lock(lock_);
    const std::int64_t idx = cursor_.get(c);
    cursor_.set(c, idx + 1);
    c.unlock(lock_);
    // The slot is claimed under the lock; the record words themselves
    // are written outside it (disjoint per record, so race-free).
    write(c, global_, static_cast<std::size_t>(idx) * stride_, op, round,
          key, delta);
  }

  /// Untimed post-run scan: the commutative digest and count of every
  /// record, plus a payload-consistency check against the op stream.
  struct Audit {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;    ///< commutative: sum of per-record mixes
    std::uint64_t bad = 0;    ///< records whose key/delta mismatch the op
  };
  [[nodiscard]] Audit audit(std::uint64_t seed, std::size_t cold,
                            std::size_t hot, double zipf) const {
    Audit a;
    auto one = [&](const SharedArray<std::int64_t>& arr, std::size_t at) {
      const std::int64_t op = arr.raw(at);
      const std::int64_t round = arr.raw(at + 1);
      const std::int64_t key = arr.raw(at + 2);
      const std::int64_t delta = arr.raw(at + 3);
      const Op want =
          decodeOp(opWord(seed, static_cast<int>(op)), cold, hot, zipf);
      if (want.type != kWrite ||
          want.key != static_cast<std::size_t>(key) || want.delta != delta) {
        ++a.bad;
      }
      ++a.count;
      a.sum += mix3(static_cast<std::uint64_t>(round),
                    static_cast<std::uint64_t>(op),
                    static_cast<std::uint64_t>(delta));
    };
    for (std::int64_t i = 0; i < cursor_.raw(); ++i) {
      one(global_, static_cast<std::size_t>(i) * stride_);
    }
    if (per_proc_) {
      const std::size_t P = subcur_.size() / kPageWords;
      for (std::size_t p = 0; p < P; ++p) {
        const auto n = static_cast<std::size_t>(subcur_.raw(p * kPageWords));
        for (std::size_t i = 0; i < n; ++i) {
          one(sub_, (p * per_cap_ + i) * stride_);
        }
      }
    }
    return a;
  }

 private:
  void write(Ctx& c, SharedArray<std::int64_t>& arr, std::size_t at,
             std::int64_t op, std::int64_t round, std::int64_t key,
             std::int64_t delta) {
    arr.set(c, at, op);
    arr.set(c, at + 1, round);
    arr.set(c, at + 2, key);
    arr.set(c, at + 3, delta);
  }

  std::size_t stride_;
  bool per_proc_;
  std::size_t per_cap_ = 0;
  SharedArray<std::int64_t> global_;
  Shared<std::int64_t> cursor_;
  int lock_ = -1;
  SharedArray<std::int64_t> sub_;     ///< [proc][per_cap_][stride_]
  SharedArray<std::int64_t> subcur_;  ///< one cursor word per proc page
};

/// Host-side serial replay of the whole op stream: the ground truth
/// every platform must reproduce.
struct Replay {
  std::vector<std::int64_t> table;
  std::uint64_t result = 0;   ///< commutative per-op digest sum
  std::uint64_t recsum = 0;   ///< commutative log-record digest sum
  std::uint64_t writes = 0;
};

Replay replay(const AppParams& prm, std::size_t nkeys, std::size_t cold,
              std::size_t hot) {
  Replay r;
  r.table.resize(nkeys);
  for (std::size_t k = 0; k < nkeys; ++k) {
    r.table[k] =
        static_cast<std::int64_t>(splitmix64(prm.seed ^ (k + 0x7ab1e)) >> 8);
  }
  for (int round = 0; round < prm.iters; ++round) {
    for (int i = 0; i < prm.n; ++i) {
      const std::uint64_t h = opWord(prm.seed, i);
      const Op o = decodeOp(h, cold, hot, prm.zipf);
      const auto ru = static_cast<std::uint64_t>(round);
      const auto iu = static_cast<std::uint64_t>(i);
      switch (o.type) {
        case kRead:
          r.result += mix3(ru, iu, static_cast<std::uint64_t>(r.table[o.key]));
          break;
        case kWrite:
          r.table[o.key] += o.delta;
          r.result += mix3(ru, iu, static_cast<std::uint64_t>(o.delta));
          r.recsum += mix3(ru, iu, static_cast<std::uint64_t>(o.delta));
          ++r.writes;
          break;
        case kScan: {
          std::int64_t sum = 0;
          for (int j = 0; j < prm.block; ++j) {
            sum += r.table[(o.key + static_cast<std::size_t>(j)) % cold];
          }
          r.result += mix3(ru, iu, static_cast<std::uint64_t>(sum));
          break;
        }
      }
    }
  }
  return r;
}

AppResult runImpl(Platform& plat, const AppParams& prm, Variant variant) {
  const int P = plat.nprocs();
  const auto nkeys =
      std::max<std::size_t>(64, static_cast<std::size_t>(prm.n) / 4);
  const std::size_t cold = nkeys / 2;
  const std::size_t hot = nkeys - cold;
  const bool padded = variant != Variant::Orig;        // P/A and up
  const bool per_proc_arena = variant == Variant::DS ||
                              variant == Variant::AlgBatch;  // DS and up
  const bool batched = variant == Variant::AlgBatch;

  const Replay ref = replay(prm, nkeys, cold, hot);

  // --- key-value table: cold half read-only, hot half written under
  // stripe locks (commutative adds, so final state is order-free) ---
  SharedArray<std::int64_t> table(plat, nkeys, HomePolicy::roundRobin(P));
  for (std::size_t k = 0; k < nkeys; ++k) {
    table.raw(k) =
        static_cast<std::int64_t>(splitmix64(prm.seed ^ (k + 0x7ab1e)) >> 8);
  }
  std::vector<int> stripes;
  for (std::size_t s = 0; s < kStripes; ++s) stripes.push_back(plat.makeLock());

  // --- request descriptors, read once per execution (a server parses
  // the payload it dequeued) ---
  SharedArray<std::int64_t> ops(plat, static_cast<std::size_t>(prm.n),
                                HomePolicy::roundRobin(P));
  for (int i = 0; i < prm.n; ++i) {
    ops.raw(static_cast<std::size_t>(i)) =
        static_cast<std::int64_t>(opWord(prm.seed, i));
  }

  // --- per-processor state: [ops-served counter, result digest]. The
  // counter is written on *every* op; packed (orig) that is a textbook
  // false-sharing hammer, padded (pa+) each processor owns a page.
  const std::size_t pstride = padded ? kPageWords : 2;
  SharedArray<std::int64_t> pstate(
      plat, static_cast<std::size_t>(P) * pstride,
      padded ? HomePolicy{[](std::uint64_t page, std::uint64_t) {
        return static_cast<ProcId>(page);
      }}
             : HomePolicy::node(0),
      padded ? 4096 : alignof(std::int64_t));
  for (std::size_t w = 0; w < pstate.size(); ++w) pstate.raw(w) = 0;

  // --- write log (ref.writes already counts every round) ---
  LogArena log(plat, ref.writes, padded ? kLineWords : 4, per_proc_arena);

  // --- task queues: skewed shares (proc 0's shard is hot) force steals ---
  const std::size_t per = std::max<std::size_t>(
      1, static_cast<std::size_t>(prm.n) / static_cast<std::size_t>(P + 1));
  std::vector<std::vector<std::int32_t>> assign(static_cast<std::size_t>(P));
  for (int i = 0; i < prm.n; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    const std::size_t owner =
        iu < 2 * per ? 0
                     : std::min<std::size_t>(static_cast<std::size_t>(P - 1),
                                             iu / per - 1);
    assign[owner].push_back(i);
  }
  TaskQueues::Options qopt;
  qopt.capacity = 2 * per + per + static_cast<std::size_t>(P) + 8;
  qopt.entry_stride_words = padded ? 16 : 1;  // 64 B per entry when padded
  qopt.split_steal = per_proc_arena;          // DS and up
  TaskQueues queues(plat, qopt);
  for (int p = 0; p < P; ++p) {
    queues.fillInitial(p, assign[static_cast<std::size_t>(p)]);
  }

  const int bar = plat.makeBarrier();

  plat.run([&](Ctx& c) {
    const auto me = static_cast<std::size_t>(c.id());
    std::uint64_t digest = 0;
    std::int64_t served = 0;
    auto exec = [&](std::int32_t task, int round) {
      const auto h = static_cast<std::uint64_t>(
          ops.get(c, static_cast<std::size_t>(task)));
      const Op o = decodeOp(h, cold, hot, prm.zipf);
      const auto ru = static_cast<std::uint64_t>(round);
      const auto tu = static_cast<std::uint64_t>(task);
      c.compute(20 + (h >> 40) % 32);  // parse + service overhead
      switch (o.type) {
        case kRead:
          digest += mix3(ru, tu,
                         static_cast<std::uint64_t>(table.get(c, o.key)));
          break;
        case kWrite: {
          const int lk = stripes[o.key % kStripes];
          c.lock(lk);
          table.update(c, o.key,
                       [&](std::int64_t v) { return v + o.delta; });
          c.unlock(lk);
          log.append(c, task, round, static_cast<std::int64_t>(o.key),
                     o.delta);
          digest += mix3(ru, tu, static_cast<std::uint64_t>(o.delta));
          break;
        }
        case kScan: {
          std::int64_t sum = 0;
          for (int j = 0; j < prm.block; ++j) {
            sum += table.get(c, (o.key + static_cast<std::size_t>(j)) % cold);
            c.compute(4);
          }
          digest += mix3(ru, tu, static_cast<std::uint64_t>(sum));
          break;
        }
      }
      ++served;
      pstate.set(c, me * pstride, served);  // per-op throughput counter
    };
    std::vector<std::int32_t> batch;
    for (int round = 0; round < prm.iters; ++round) {
      if (round > 0) {
        queues.refill(c, assign[me]);
        c.barrier(bar);
      }
      if (batched) {
        for (;;) {
          batch.clear();
          if (queues.nextBatch(c, batch, kBatch, /*allow_steal=*/true) == 0) {
            break;
          }
          for (std::int32_t t : batch) exec(t, round);
        }
      } else {
        for (;;) {
          const std::int32_t t = queues.next(c, /*allow_steal=*/true);
          if (t < 0) break;
          exec(t, round);
        }
      }
      pstate.set(c, me * pstride + 1, static_cast<std::int64_t>(digest));
      c.barrier(bar);
    }
  });

  AppResult res;
  res.stats = plat.engine().collect();

  // --- verification against the serial replay ---
  std::size_t bad_keys = 0;
  for (std::size_t k = 0; k < nkeys; ++k) {
    if (table.raw(k) != ref.table[k]) ++bad_keys;
  }
  std::uint64_t result_sum = 0;
  for (int p = 0; p < P; ++p) {
    result_sum += static_cast<std::uint64_t>(
        pstate.raw(static_cast<std::size_t>(p) * pstride + 1));
  }
  const LogArena::Audit a = log.audit(prm.seed, cold, hot, prm.zipf);
  const std::uint64_t want_recs = ref.writes;
  const std::uint64_t executed = res.stats.sum(&ProcStats::tasks_executed);
  const std::uint64_t want_ops = static_cast<std::uint64_t>(prm.n) *
                                 static_cast<std::uint64_t>(prm.iters);

  res.correct = bad_keys == 0 && result_sum == ref.result && a.bad == 0 &&
                a.count == want_recs && a.sum == ref.recsum &&
                executed == want_ops;
  if (res.correct) {
    res.note = "table, op digests, and write log match serial replay";
  } else {
    res.note = std::to_string(bad_keys) + " bad keys; result " +
               (result_sum == ref.result ? "ok" : "MISMATCH") + "; log " +
               std::to_string(a.count) + "/" + std::to_string(want_recs) +
               " records (" + std::to_string(a.bad) + " bad, sum " +
               (a.sum == ref.recsum ? "ok" : "MISMATCH") + "); executed " +
               std::to_string(executed) + "/" + std::to_string(want_ops);
  }

  std::uint64_t state = kFnvOffset;
  for (std::size_t k = 0; k < nkeys; ++k) {
    state = fnvStep(state, static_cast<std::uint64_t>(table.raw(k)));
  }
  res.state_hash = fnvStep(state, a.sum);
  res.result_hash = result_sum;
  return res;
}

}  // namespace

AppResult run(Platform& plat, const AppParams& prm, Variant v) {
  return runImpl(plat, prm, v);
}

AppDesc describe() {
  AppDesc d;
  d.name = "server";
  d.summary = "request-serving workload: skewed task queues + KV table + "
              "write log";
  d.tiny = {.n = 1536, .iters = 2, .block = 8, .seed = 42};
  d.small = {.n = 16384, .iters = 3, .block = 8, .seed = 42};
  d.paper = {.n = 131072, .iters = 4, .block = 8, .seed = 42};
  auto ver = [](const char* name, OptClass cls, const char* sum, Variant v) {
    return VersionDesc{name, cls, sum,
                       [v](Platform& p, const AppParams& prm) {
                         return run(p, prm, v);
                       }};
  };
  d.versions = {
      ver("orig", OptClass::Orig,
          "packed stat counters, bare queues, one locked bump allocator",
          Variant::Orig),
      ver("pa", OptClass::PA,
          "stat counters padded to pages, queue entries and log records "
          "padded to lines",
          Variant::PA),
      ver("ds", OptClass::DS,
          "per-processor allocator sub-arenas + split private/public queues",
          Variant::DS),
      ver("alg-batch", OptClass::Alg,
          "batched dequeue: one lock transfer per 8 tasks", Variant::AlgBatch),
  };
  return d;
}

}  // namespace rsvm::apps::server
