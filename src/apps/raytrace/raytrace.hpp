// Whitted-style ray tracer modeled on SPLASH-2 "Raytrace" (paper section
// 4.2.3), rendering a procedural sphere scene through a uniform-grid
// accelerator (substituting for the paper's `car` data set -- see
// DESIGN.md). Tiles are dealt round-robin; task stealing handles the
// highly unpredictable per-ray work.
//
// Versions:
//  * orig       -- global statistics counters protected by a lock,
//                  updated once per ray: harmless on hardware coherence,
//                  catastrophic on SVM ("speedup" 0.5 in the paper).
//  * alg-nolock -- statistics kept per-processor, lock removed
//                  (0.5 -> 11.05 in the paper).
//  * alg-splitq -- additionally split each processor's task queue into a
//                  private one (no lock) and a public one for thieves
//                  (11.05 -> 11.72 in the paper).
#pragma once

#include "core/app.hpp"

namespace rsvm::apps::raytrace {

enum class Variant { Orig, AlgNoLock, AlgSplitQ };

/// prm.n = image dimension in pixels; prm.block = number of spheres.
AppResult run(Platform& plat, const AppParams& prm, Variant v);

AppDesc describe();

}  // namespace rsvm::apps::raytrace
