#include "apps/raytrace/raytrace.hpp"

#include "apps/common/task_queue.hpp"
#include "runtime/shared.hpp"

#include <cmath>
#include <random>
#include <vector>

namespace rsvm::apps::raytrace {
namespace {

constexpr int kTile = 4;        ///< tile edge in pixels (unit of stealing)
constexpr int kGrid = 8;        ///< uniform-grid resolution per axis
constexpr int kMaxDepth = 2;    ///< reflection bounces
constexpr std::size_t kPageBytes = 4096;
constexpr std::size_t kSphereStride = 8;  ///< floats per sphere record

struct Vec {
  double x = 0, y = 0, z = 0;
};
inline Vec operator+(Vec a, Vec b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
inline Vec operator-(Vec a, Vec b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
inline Vec operator*(Vec a, double s) { return {a.x * s, a.y * s, a.z * s}; }
inline double dot(Vec a, Vec b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
inline Vec norm(Vec a) {
  const double l = std::sqrt(dot(a, a));
  return l > 0 ? a * (1.0 / l) : a;
}

struct SceneHost {
  std::vector<float> spheres;           ///< kSphereStride floats per sphere
  std::vector<std::int32_t> cell_first; ///< per grid cell, into items
  std::vector<std::int32_t> cell_count;
  std::vector<std::int32_t> items;
  int nspheres = 0;
};

SceneHost buildScene(int nspheres, std::uint64_t seed) {
  SceneHost s;
  s.nspheres = nspheres;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  s.spheres.resize(static_cast<std::size_t>(nspheres) * kSphereStride, 0.0f);
  for (int i = 0; i < nspheres; ++i) {
    float* sp = &s.spheres[static_cast<std::size_t>(i) * kSphereStride];
    sp[0] = static_cast<float>(0.1 + 0.8 * u(rng));       // cx
    sp[1] = static_cast<float>(0.06 + 0.6 * u(rng));      // cy
    sp[2] = static_cast<float>(0.1 + 0.8 * u(rng));       // cz
    sp[3] = static_cast<float>(0.03 + 0.06 * u(rng));     // r
    sp[4] = u(rng) < 0.3 ? 0.4f : 0.0f;                   // reflectivity
    sp[5] = static_cast<float>(0.4 + 0.6 * u(rng));       // shade
  }
  // Uniform grid over [0,1]^3.
  const int G = kGrid;
  s.cell_first.assign(static_cast<std::size_t>(G) * G * G, 0);
  s.cell_count.assign(static_cast<std::size_t>(G) * G * G, 0);
  std::vector<std::vector<std::int32_t>> cells(
      static_cast<std::size_t>(G) * G * G);
  for (int i = 0; i < nspheres; ++i) {
    const float* sp = &s.spheres[static_cast<std::size_t>(i) * kSphereStride];
    const int x0 = std::max(0, static_cast<int>((sp[0] - sp[3]) * G));
    const int x1 = std::min(G - 1, static_cast<int>((sp[0] + sp[3]) * G));
    const int y0 = std::max(0, static_cast<int>((sp[1] - sp[3]) * G));
    const int y1 = std::min(G - 1, static_cast<int>((sp[1] + sp[3]) * G));
    const int z0 = std::max(0, static_cast<int>((sp[2] - sp[3]) * G));
    const int z1 = std::min(G - 1, static_cast<int>((sp[2] + sp[3]) * G));
    for (int x = x0; x <= x1; ++x) {
      for (int y = y0; y <= y1; ++y) {
        for (int z = z0; z <= z1; ++z) {
          cells[(static_cast<std::size_t>(x) * G + y) * G + z].push_back(i);
        }
      }
    }
  }
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    s.cell_first[ci] = static_cast<std::int32_t>(s.items.size());
    s.cell_count[ci] = static_cast<std::int32_t>(cells[ci].size());
    for (std::int32_t id : cells[ci]) s.items.push_back(id);
  }
  return s;
}

constexpr Vec kLight{0.3, 1.5, -0.5};
constexpr Vec kEye{0.5, 0.45, -1.6};

/// Scene accessor abstraction so the identical tracing code runs both
/// against the simulator (charging accesses) and the host reference.
struct Tracer {
  const SceneHost& host;
  // Null for the serial reference; set for simulated runs.
  Ctx* c = nullptr;
  SharedArray<float>* spheres = nullptr;
  SharedArray<std::int32_t>* cell_first = nullptr;
  SharedArray<std::int32_t>* cell_count = nullptr;
  SharedArray<std::int32_t>* items = nullptr;
  std::uint64_t rays = 0, tests = 0;

  float sphereF(int i, int f) {
    const std::size_t k = static_cast<std::size_t>(i) * kSphereStride +
                          static_cast<std::size_t>(f);
    if (c != nullptr) return spheres->get(*c, k);
    return host.spheres[k];
  }
  std::int32_t cellFirst(std::size_t ci) {
    if (c != nullptr) return cell_first->get(*c, ci);
    return host.cell_first[ci];
  }
  std::int32_t cellCount(std::size_t ci) {
    if (c != nullptr) return cell_count->get(*c, ci);
    return host.cell_count[ci];
  }
  std::int32_t item(std::size_t k) {
    if (c != nullptr) return items->get(*c, k);
    return host.items[k];
  }
  void charge(Cycles n) {
    if (c != nullptr) c->compute(n);
  }

  /// Closest sphere hit along o + t*d, t in (eps, tmax). Returns id or -1.
  int hitSphere(Vec o, Vec d, double tmax, double* t_out) {
    // 3D-DDA through the uniform grid.
    double t0 = 0.0;
    // Clip the ray to the unit box.
    double tenter = 0.0, texit = tmax;
    const double ox[3] = {o.x, o.y, o.z}, dx[3] = {d.x, d.y, d.z};
    for (int a = 0; a < 3; ++a) {
      if (std::abs(dx[a]) < 1e-12) {
        if (ox[a] < 0.0 || ox[a] > 1.0) return -1;
        continue;
      }
      double ta = (0.0 - ox[a]) / dx[a];
      double tb = (1.0 - ox[a]) / dx[a];
      if (ta > tb) std::swap(ta, tb);
      tenter = std::max(tenter, ta);
      texit = std::min(texit, tb);
    }
    charge(25);
    if (tenter > texit) return -1;
    t0 = std::max(tenter, 0.0) + 1e-9;
    Vec p = o + d * t0;
    int cx = std::min(kGrid - 1, std::max(0, static_cast<int>(p.x * kGrid)));
    int cy = std::min(kGrid - 1, std::max(0, static_cast<int>(p.y * kGrid)));
    int cz = std::min(kGrid - 1, std::max(0, static_cast<int>(p.z * kGrid)));
    const int sx = d.x > 0 ? 1 : -1, sy = d.y > 0 ? 1 : -1,
              sz = d.z > 0 ? 1 : -1;
    const double cw = 1.0 / kGrid;
    auto nextBound = [&](double oa, double da, int ca, int sa) {
      const double edge = (ca + (sa > 0 ? 1 : 0)) * cw;
      return std::abs(da) < 1e-12 ? 1e30 : (edge - oa) / da;
    };
    double tmx = nextBound(o.x, d.x, cx, sx);
    double tmy = nextBound(o.y, d.y, cy, sy);
    double tmz = nextBound(o.z, d.z, cz, sz);
    const double tdx = std::abs(d.x) < 1e-12 ? 1e30 : cw / std::abs(d.x);
    const double tdy = std::abs(d.y) < 1e-12 ? 1e30 : cw / std::abs(d.y);
    const double tdz = std::abs(d.z) < 1e-12 ? 1e30 : cw / std::abs(d.z);
    int best = -1;
    double best_t = tmax;
    for (;;) {
      const std::size_t ci =
          (static_cast<std::size_t>(cx) * kGrid + cy) * kGrid + cz;
      const std::int32_t first = cellFirst(ci);
      const std::int32_t count = cellCount(ci);
      charge(20);
      for (std::int32_t k = 0; k < count; ++k) {
        const std::int32_t id = item(static_cast<std::size_t>(first + k));
        ++tests;
        charge(60);
        const Vec ctr{sphereF(id, 0), sphereF(id, 1), sphereF(id, 2)};
        const double r = sphereF(id, 3);
        const Vec oc = o - ctr;
        const double b = dot(oc, d);
        const double disc = b * b - (dot(oc, oc) - r * r);
        if (disc <= 0.0) continue;
        const double sq = std::sqrt(disc);
        double t = -b - sq;
        if (t < 1e-7) t = -b + sq;
        if (t > 1e-7 && t < best_t) {
          best_t = t;
          best = id;
        }
      }
      const double tnext = std::min(tmx, std::min(tmy, tmz));
      if (best >= 0 && best_t <= tnext) break;  // hit within this cell
      if (tnext > texit) break;
      if (tmx <= tmy && tmx <= tmz) {
        cx += sx;
        tmx += tdx;
        if (cx < 0 || cx >= kGrid) break;
      } else if (tmy <= tmz) {
        cy += sy;
        tmy += tdy;
        if (cy < 0 || cy >= kGrid) break;
      } else {
        cz += sz;
        tmz += tdz;
        if (cz < 0 || cz >= kGrid) break;
      }
    }
    *t_out = best_t;
    return best;
  }

  bool shadowed(Vec p) {
    const Vec to = kLight - p;
    const double dist = std::sqrt(dot(to, to));
    double t;
    return hitSphere(p, to * (1.0 / dist), dist, &t) >= 0;
  }

  float trace(Vec o, Vec d, int depth) {
    ++rays;
    double t;
    const int id = hitSphere(o, d, 1e30, &t);
    charge(40);
    if (id >= 0) {
      const Vec p = o + d * t;
      const Vec n = norm(p - Vec{sphereF(id, 0), sphereF(id, 1), sphereF(id, 2)});
      const Vec l = norm(kLight - p);
      double lum = 0.1;  // ambient
      charge(120);
      if (!shadowed(p + n * 1e-6)) {
        lum += std::max(0.0, dot(n, l)) * sphereF(id, 5);
      } else {
        lum += 0.05;
      }
      const float refl = sphereF(id, 4);
      if (refl > 0.0f && depth < kMaxDepth) {
        const Vec rd = d - n * (2.0 * dot(n, d));
        lum += refl * trace(p + rd * 1e-6, norm(rd), depth + 1);
      }
      return static_cast<float>(lum);
    }
    // Ground plane y = 0 with a checker pattern.
    if (d.y < -1e-9) {
      const double tp = -o.y / d.y;
      const Vec p = o + d * tp;
      if (std::abs(p.x - 0.5) < 2.0 && std::abs(p.z - 0.5) < 2.0) {
        const int cxi = static_cast<int>(std::floor(p.x * 6.0));
        const int czi = static_cast<int>(std::floor(p.z * 6.0));
        double lum = ((cxi + czi) & 1) != 0 ? 0.55 : 0.25;
        charge(60);
        if (shadowed(p + Vec{0, 1e-6, 0})) lum *= 0.35;
        return static_cast<float>(lum);
      }
    }
    return 0.04f;  // background
  }
};

inline std::uint8_t quantize(float v) {
  const float q = v * 255.0f + 0.5f;
  return static_cast<std::uint8_t>(q > 255.0f ? 255.0f : q);
}

Vec primaryDir(int n, int px, int py, int sub) {
  // 2x2 supersampling grid within the pixel.
  const double du = (sub % 2) * 0.5 + 0.25;
  const double dv = (sub / 2) * 0.5 + 0.25;
  const double u = (px + du) / n;
  const double v = 1.0 - (py + dv) / n;
  const Vec target{u, v * 0.9, 0.0};
  return norm(target - kEye);
}

template <class T>
float shadePixel(T& tr, int n, int px, int py) {
  float acc = 0.0f;
  for (int sub = 0; sub < 4; ++sub) {
    acc += tr.trace(kEye, primaryDir(n, px, py, sub), 0);
  }
  return acc * 0.25f;
}

AppResult runImpl(Platform& plat, const AppParams& prm, Variant variant) {
  const int n = prm.n;
  const int P = plat.nprocs();
  const int nspheres = prm.block;
  const SceneHost scene = buildScene(nspheres, prm.seed);

  // --- scene in shared memory (read-only), round-robin homes ---
  SharedArray<float> spheres(plat, scene.spheres.size(),
                             HomePolicy::roundRobin(P));
  SharedArray<std::int32_t> cell_first(plat, scene.cell_first.size(),
                                       HomePolicy::roundRobin(P));
  SharedArray<std::int32_t> cell_count(plat, scene.cell_count.size(),
                                       HomePolicy::roundRobin(P));
  SharedArray<std::int32_t> items(plat, std::max<std::size_t>(scene.items.size(), 1),
                                  HomePolicy::roundRobin(P));
  for (std::size_t i = 0; i < scene.spheres.size(); ++i) {
    spheres.raw(i) = scene.spheres[i];
  }
  for (std::size_t i = 0; i < scene.cell_first.size(); ++i) {
    cell_first.raw(i) = scene.cell_first[i];
    cell_count.raw(i) = scene.cell_count[i];
  }
  for (std::size_t i = 0; i < scene.items.size(); ++i) {
    items.raw(i) = scene.items[i];
  }
  // Processor 0 read the scene description in and therefore starts with
  // resident copies of all scene pages (the paper's Fig. 12 effect).
  plat.warm(0, spheres.base(), spheres.bytes());
  plat.warm(0, cell_first.base(), cell_first.bytes());
  plat.warm(0, cell_count.base(), cell_count.bytes());
  plat.warm(0, items.base(), items.bytes());

  // --- image and statistics ---
  SharedArray<std::uint8_t> img(plat, static_cast<std::size_t>(n) * n,
                                HomePolicy::roundRobin(P), kPageBytes);
  // Global counters [rays, tests] on one page at node 0 (orig), or
  // page-strided per-processor slots (optimized versions).
  SharedArray<std::uint64_t> gstats(plat, 2, HomePolicy::node(0));
  SharedArray<std::uint64_t> pstats(
      plat, static_cast<std::size_t>(P) * (kPageBytes / 8) , HomePolicy::roundRobin(P),
      kPageBytes);
  const int stat_lock = plat.makeLock();

  // --- task queues: tiles dealt round-robin ---
  const int tiles = n / kTile;
  TaskQueues::Options qopt;
  qopt.capacity = static_cast<std::size_t>(tiles) * tiles;
  qopt.split_steal = variant == Variant::AlgSplitQ;
  TaskQueues queues(plat, qopt);
  {
    std::vector<std::vector<std::int32_t>> assign(static_cast<std::size_t>(P));
    for (std::int32_t t = 0; t < tiles * tiles; ++t) {
      assign[static_cast<std::size_t>(t % P)].push_back(t);
    }
    for (int p = 0; p < P; ++p) {
      queues.fillInitial(p, assign[static_cast<std::size_t>(p)]);
    }
  }

  const int bar = plat.makeBarrier();

  plat.run([&](Ctx& c) {
    Tracer tr{scene, &c, &spheres, &cell_first, &cell_count, &items, 0, 0};
    const auto me = static_cast<std::size_t>(c.id());
    std::uint64_t last_rays = 0, last_tests = 0;
    for (;;) {
      const std::int32_t task = queues.next(c, /*allow_steal=*/true);
      if (task < 0) break;
      const int ty = task / tiles, tx = task % tiles;
      for (int py = ty * kTile; py < (ty + 1) * kTile; ++py) {
        for (int px = tx * kTile; px < (tx + 1) * kTile; ++px) {
          c.compute(30);
          const float lum = shadePixel(tr, n, px, py);
          img.set(c, static_cast<std::size_t>(py) * n + px, quantize(lum));
          // Statistics bookkeeping, once per primary ray.
          const std::uint64_t dr = tr.rays - last_rays;
          const std::uint64_t dt = tr.tests - last_tests;
          last_rays = tr.rays;
          last_tests = tr.tests;
          if (variant == Variant::Orig) {
            c.lock(stat_lock);
            gstats.update(c, 0, [dr](std::uint64_t v) { return v + dr; });
            gstats.update(c, 1, [dt](std::uint64_t v) { return v + dt; });
            c.unlock(stat_lock);
          } else {
            const std::size_t slot = me * (kPageBytes / 8);
            pstats.update(c, slot, [dr](std::uint64_t v) { return v + dr; });
            pstats.update(c, slot + 1,
                          [dt](std::uint64_t v) { return v + dt; });
          }
        }
      }
    }
    c.barrier(bar);
  });

  AppResult res;
  res.stats = plat.engine().collect();

  // Serial reference image + ray count.
  Tracer ref{scene, nullptr, nullptr, nullptr, nullptr, nullptr, 0, 0};
  std::size_t bad = 0;
  std::vector<std::uint8_t> rimg(static_cast<std::size_t>(n) * n);
  for (int py = 0; py < n; ++py) {
    for (int px = 0; px < n; ++px) {
      rimg[static_cast<std::size_t>(py) * n + px] =
          quantize(shadePixel(ref, n, px, py));
    }
  }
  for (std::size_t i = 0; i < rimg.size(); ++i) {
    if (rimg[i] != img.raw(i)) ++bad;
  }
  std::uint64_t rays = 0;
  if (variant == Variant::Orig) {
    rays = gstats.raw(0);
  } else {
    for (int p = 0; p < P; ++p) {
      rays += pstats.raw(static_cast<std::size_t>(p) * (kPageBytes / 8));
    }
  }
  res.correct = bad == 0 && rays == ref.rays;
  res.note = bad == 0 ? (rays == ref.rays
                             ? "image + ray statistics match reference"
                             : "ray statistics mismatch")
                      : std::to_string(bad) + " mismatched pixels";
  return res;
}

}  // namespace

AppResult run(Platform& plat, const AppParams& prm, Variant v) {
  return runImpl(plat, prm, v);
}

AppDesc describe() {
  AppDesc d;
  d.name = "raytrace";
  d.summary = "Whitted ray tracer with uniform grid (SPLASH-2 Raytrace)";
  d.tiny = {.n = 32, .iters = 1, .block = 24, .seed = 99};
  d.small = {.n = 128, .iters = 1, .block = 200, .seed = 99};
  d.paper = {.n = 128, .iters = 1, .block = 400, .seed = 99};
  auto ver = [](const char* name, OptClass cls, const char* sum, Variant v) {
    return VersionDesc{name, cls, sum,
                       [v](Platform& p, const AppParams& prm) {
                         return run(p, prm, v);
                       }};
  };
  d.versions = {
      ver("orig", OptClass::Orig, "global stats lock once per ray",
          Variant::Orig),
      ver("alg-nolock", OptClass::Alg, "per-processor statistics, no lock",
          Variant::AlgNoLock),
      ver("alg-splitq", OptClass::Alg,
          "per-processor stats + split private/public task queues",
          Variant::AlgSplitQ),
  };
  return d;
}

}  // namespace rsvm::apps::raytrace
