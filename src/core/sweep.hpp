// Host-parallel experiment sweeps. A sweep is a list of independent
// simulation points (platform x app x version x params x procs); each
// point is a fully self-contained single-threaded simulation, so a pool
// of host threads can run many points concurrently while every point
// stays bit-identical to a sequential run. Results come back in
// submission order regardless of how many workers ran them.
#pragma once

#include "core/app.hpp"

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

namespace rsvm {

/// One simulation to run. `kind` selects a stock platform via
/// Platform::create; custom configurations (SMP-node clustering,
/// Typhoon-style FGS presets, ...) supply `make_platform` instead and
/// tag themselves with `config` so results and baseline caching can
/// tell configurations apart.
struct SweepPoint {
  PlatformKind kind = PlatformKind::SVM;
  std::string app;      ///< registry name, e.g. "lu"
  std::string version;  ///< version name, e.g. "4d-aligned"
  AppParams params;
  int procs = 16;
  bool free_cs_faults = false;

  /// Robustness knobs. `check` enables the shadow-memory coherence
  /// oracle; `fault_seed` (nonzero) arms deterministic fault injection;
  /// `deadline_ms` (positive) arms the engine's host-wall-clock watchdog
  /// so a hung point becomes a diagnostic error instead of a hung sweep.
  CheckLevel check = CheckLevel::Off;
  std::uint64_t fault_seed = 0;
  double deadline_ms = 0.0;

  /// Host worker threads for this point's single-run engine (promised
  /// bit-identical; see Platform::setEngineThreads). 0 = let the runner
  /// decide from its Config (big-proc points get Config::engine_threads,
  /// small points stay sequential and packed). The runner normalizes
  /// this to the effective value before keying the point, so cached
  /// results never alias across threading modes.
  int engine_threads = 0;

  /// Compute the paper-style baseline (original version, one processor,
  /// same platform configuration and params) so speedup() is defined.
  bool with_baseline = true;

  /// Tag for non-stock platform configurations (e.g. "4x4", "typhoon0").
  /// Purely descriptive except that it defaults the baseline cache key.
  std::string config;

  /// Baseline-cache discriminator; points sharing (kind, app, params,
  /// baseline_key) share one uniprocessor baseline run. Defaults to
  /// `config`. Used e.g. to let clustered-SVM columns share the flat
  /// baseline the paper measures against.
  std::string baseline_key;

  /// Optional factory for the point's platform (argument: nprocs).
  /// Default: Platform::create(kind, nprocs).
  std::function<std::unique_ptr<Platform>(int)> make_platform;

  /// Optional factory for the baseline's uniprocessor platform.
  /// Default: make_platform, falling back to Platform::create(kind, 1).
  std::function<std::unique_ptr<Platform>(int)> make_baseline;
};

/// Outcome of one point. `error` is non-empty when the run (or its
/// baseline) failed -- the sweep never throws for individual points, so
/// one bad cell cannot abort a long figure run.
struct SweepResult {
  AppResult app;           ///< stats + correctness of the point's run
  Cycles cycles = 0;       ///< parallel execution time
  Cycles base_cycles = 0;  ///< uniprocessor baseline (0 if none requested)
  double wall_ms = 0.0;    ///< host wall-clock spent on this point
  std::string error;       ///< why the point failed, with full context
  bool timed_out = false;  ///< the point's watchdog/deadline fired
  int retries = 0;         ///< extra attempts consumed (fault-seeded points)
  std::size_t oracle_violations = 0;  ///< total oracle violations (0 = clean)

  /// Provenance. A point is either computed (all three false), served
  /// from the content-addressed result cache (`cached`), replayed from
  /// this sweep's checkpoint manifest (`resumed`), or not run at all
  /// because it belongs to another shard (`skipped`). Simulated fields
  /// of cached/resumed results are bit-identical to a recompute.
  bool cached = false;
  bool resumed = false;
  bool skipped = false;

  [[nodiscard]] bool ok() const { return error.empty(); }
  [[nodiscard]] double speedup() const {
    return (cycles == 0 || base_cycles == 0)
               ? 0.0
               : static_cast<double>(base_cycles) /
                     static_cast<double>(cycles);
  }
};

class ResultCache;
class CheckpointLog;

/// Bounded host-thread pool over sweep points. Workers self-schedule
/// from a shared index (work-stealing over the tail of the job list), so
/// slow points do not serialize the sweep behind them. Baselines are
/// deduplicated across points and computed exactly once each.
///
/// Fleet features (all opt-in via Config):
///  * result cache -- points are looked up in a content-addressed
///    on-disk store (core/result_cache.hpp) before being scheduled and
///    inserted after computing, so repeated points cost a file read;
///  * checkpoint/resume -- completed points are journaled to an
///    append-only manifest (core/checkpoint.hpp); a killed sweep
///    restarted with the same point list and manifest skips everything
///    already journaled, including a torn final record;
///  * sharding -- with shard_count = N, only points whose submission
///    index i satisfies i % N == shard_index are run; the rest come
///    back with skipped = true. Shards are disjoint and complete by
///    construction, so N processes (or hosts) each running one shard
///    cover the sweep exactly once; bench/sweep_merge fuses their
///    reports.
///
/// Each worker thread runs its points' engines on its own thread, so it
/// accumulates a thread-local pool of fiber stacks (see sim/fiber.hpp):
/// the first point a worker runs allocates its stacks, every later
/// point on that worker reuses them. The pool drains when the worker
/// exits at the end of run().
class SweepRunner {
 public:
  struct Config {
    int jobs = 0;             ///< host worker threads; <= 0 = defaultJobs()
    std::string cache_dir;    ///< content-addressed result cache; "" = off
    std::string checkpoint;   ///< append-only resume manifest; "" = off
    int shard_index = 0;      ///< 0-based shard of this runner
    int shard_count = 1;      ///< total shards; 1 = run everything
    /// Intra-point parallelism policy: points with procs >=
    /// engine_threads_min_procs (and no per-point override) run their
    /// single engine on this many host threads; smaller points stay
    /// sequential so many of them pack across the worker pool. The
    /// total host-thread budget stays `jobs`: a point running on T
    /// engine threads occupies T of the pool's permits.
    int engine_threads = 1;
    int engine_threads_min_procs = 32;
  };

  /// Per-run provenance counters: where each non-skipped point's result
  /// came from, plus cache-store accounting. Reset by every run().
  struct FleetStats {
    std::uint64_t computed = 0;     ///< simulated in this run
    std::uint64_t cache_hits = 0;   ///< served from the result cache
    std::uint64_t resumed = 0;      ///< served from the checkpoint manifest
    std::uint64_t stores = 0;       ///< new cache entries written
    std::uint64_t shard_skipped = 0;  ///< points outside this shard
    std::uint64_t cache_corrupt = 0;  ///< cache entries dropped by checksum
    std::uint64_t uncacheable = 0;  ///< points that cannot be keyed
  };

  /// jobs <= 0 selects defaultJobs() (hardware concurrency).
  explicit SweepRunner(int jobs = 0);
  explicit SweepRunner(const Config& cfg);
  ~SweepRunner();

  [[nodiscard]] int jobs() const { return cfg_.jobs; }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Run every point; results[i] corresponds to points[i] regardless of
  /// the worker count or completion order.
  std::vector<SweepResult> run(const std::vector<SweepPoint>& points);

  /// Provenance of the most recent run().
  [[nodiscard]] const FleetStats& fleetStats() const { return fleet_; }

  /// Hardware concurrency, clamped to at least 1.
  static int defaultJobs();

 private:
  using BaselineKey =
      std::tuple<int, std::string, std::string, int, int, int, std::uint64_t,
                 double>;

  Cycles baseline(const SweepPoint& p);
  SweepResult runPoint(const SweepPoint& p);
  /// One attempt at a point (no retry logic, no wall-clock accounting).
  SweepResult attemptPoint(const SweepPoint& p);
  /// The engine-thread count a point will actually run with (>= 1):
  /// per-point override, else the Config policy.
  [[nodiscard]] int effectiveEngineThreads(const SweepPoint& p) const;

  Config cfg_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<CheckpointLog> ckpt_;
  FleetStats fleet_;
  std::mutex fleet_mu_;  ///< guards fleet_ during run()
  std::mutex mu_;        ///< guards base_cache_
  std::map<BaselineKey, std::shared_future<Cycles>> base_cache_;
};

/// Human-readable point label for error messages and logs:
/// "lu/4d-aligned on SVM[4x4] with 16 procs (n=512)".
std::string describePoint(const SweepPoint& p);

}  // namespace rsvm
