// Content-addressed on-disk cache of sweep-point results. Every
// simulation in this repo is a deterministic function of its SweepPoint
// (app, version, platform kind + config + params, procs) plus host-side
// execution knobs that are *promised* not to change simulated results
// but are keyed anyway so a false promise can never serve a stale
// answer: the fiber backend, the check level, the fault seed, the
// engine-threading mode -- and the engine revision string baked in at
// build time. Two processes
// (or two runs weeks apart) that ask for the same point therefore get
// the same bits, so shared uniprocessor baselines and re-run benches are
// cache hits instead of recomputations.
//
// Layout: one file per entry under <dir>/<hh>/<32-hex-digest>.rc, where
// <hh> is the first digest byte (keeps directories small at fleet
// scale). Entries are written to a temp file and rename()d into place,
// so a killed writer never leaves a torn entry; a corrupt or truncated
// entry fails its checksum and is treated as a miss (and overwritten by
// the recompute). The full canonical key text is stored inside the
// entry and verified on load, so a digest collision degrades to a miss,
// never to a wrong answer.
#pragma once

#include "core/sweep.hpp"

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rsvm {

/// Engine revision string baked in at build time (the git revision the
/// build was configured from, via the RSVM_ENGINE_REV compile
/// definition; "dev" when built outside git). Part of every cache key:
/// results computed by a different engine build never alias.
const char* engineRev();

/// 128-bit content digest of a canonical key text.
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  /// 32 lowercase hex chars, used as the entry's file name.
  [[nodiscard]] std::string hex() const;
};

/// Whether a point can be addressed by content at all. Points that
/// supply a custom platform factory without tagging it via `config` are
/// not cacheable: the factory's behavior is not part of the key, so two
/// different configurations would alias.
[[nodiscard]] bool cacheable(const SweepPoint& p);

/// The canonical key text of a point: every field that can influence
/// the simulated result (plus the promised-neutral execution knobs),
/// rendered "k=v|k=v|...". `rev` and `fiber` default to the build's
/// engine revision and the process-wide fiber backend; tests inject
/// other values to prove key separation.
[[nodiscard]] std::string cacheKeyText(const SweepPoint& p);
[[nodiscard]] std::string cacheKeyText(const SweepPoint& p,
                                       std::string_view rev,
                                       std::string_view fiber);

[[nodiscard]] CacheKey cacheKeyOf(std::string_view key_text);

/// Binary entry codec, shared with the checkpoint manifest
/// (core/checkpoint.hpp): [magic u32][payload_len u32][fnv1a64 of
/// payload][payload = key text + SweepResult]. Host-only fields
/// (wall_ms, host_wall_ms, retries and the cached/resumed/skipped
/// provenance flags) are not stored: an entry holds exactly the
/// simulated result.
[[nodiscard]] std::string encodeResult(std::string_view key_text,
                                       const SweepResult& r);

/// Decode one record from the front of `bytes`. On success fills
/// key_text/out, sets *consumed to the record's size, and returns true;
/// returns false on a short, corrupt, or checksum-failing record.
bool decodeResult(std::string_view bytes, std::string* key_text,
                  SweepResult* out, std::size_t* consumed);

/// The on-disk store. All methods are thread-safe; concurrent processes
/// may share one directory (inserts are atomic renames, duplicate
/// inserts of the same key are idempotent by construction -- the bytes
/// are identical).
class ResultCache {
 public:
  /// Creates `dir` (and its parents' final component) if missing;
  /// throws std::runtime_error if it cannot be created.
  explicit ResultCache(std::string dir);

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Returns the stored result (with cached=true) or nullopt on miss.
  std::optional<SweepResult> lookup(const SweepPoint& p);

  /// Stores an ok() result; failed, timed-out, or uncacheable points
  /// are never stored. Returns whether an entry was written.
  bool insert(const SweepPoint& p, const SweepResult& r);

  /// Garbage-collect the directory: delete entries older than
  /// `max_age_seconds` (0 = no age limit), then evict oldest-first until
  /// total entry bytes fit under `max_bytes` (0 = no size limit).
  /// Eviction order is strictly (mtime, path), so it is reproducible;
  /// each eviction is a single unlink, so a concurrent reader either
  /// gets the whole entry or a clean miss, and concurrent writers'
  /// in-flight ".tmp." files are never touched. Safe to run while other
  /// processes use the cache -- an evicted entry simply recomputes.
  struct GcStats {
    std::uint64_t scanned = 0;       ///< entries examined
    std::uint64_t evicted = 0;       ///< entries deleted
    std::uint64_t bytes_before = 0;  ///< total entry bytes found
    std::uint64_t bytes_after = 0;   ///< total entry bytes kept
  };
  GcStats gc(std::uint64_t max_bytes, double max_age_seconds);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t corrupt = 0;      ///< entries dropped by checksum/key check
    std::uint64_t uncacheable = 0;  ///< points that cannot be keyed
  };
  [[nodiscard]] Stats stats() const;

 private:
  std::string entryPath(const CacheKey& key) const;

  std::string dir_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> corrupt_{0};
  std::atomic<std::uint64_t> uncacheable_{0};
};

}  // namespace rsvm
