#include "core/experiment.hpp"

#include <cstdio>
#include <stdexcept>

namespace rsvm {

AppResult Experiment::runOnce(PlatformKind kind, const VersionDesc& ver,
                              const AppParams& prm, int nprocs,
                              bool free_cs_faults,
                              std::string_view app_name) {
  auto plat = Platform::create(kind, nprocs);
  plat->free_cs_faults = free_cs_faults;
  AppResult r = ver.run(*plat, prm);
  if (!r.correct) {
    // The platform (and any attached trace) dies with this scope, so the
    // message must carry enough context to attribute the failure.
    std::string who = app_name.empty()
                          ? "version '" + ver.name + "'"
                          : std::string(app_name) + "/" + ver.name;
    throw std::runtime_error(
        "experiment: incorrect result from " + who + " on " +
        platformName(kind) + " with " + std::to_string(nprocs) +
        " procs (n=" + std::to_string(prm.n) +
        ", iters=" + std::to_string(prm.iters) +
        ", block=" + std::to_string(prm.block) +
        ", seed=" + std::to_string(prm.seed) + "): " + r.note);
  }
  return r;
}

Cycles Experiment::baseline(PlatformKind kind, const AppParams& prm) {
  const auto key = std::make_pair(static_cast<int>(kind), prm.n);
  std::shared_future<Cycles> fut;
  std::promise<Cycles> prom;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (const auto it = base_cache_.find(key); it != base_cache_.end()) {
      fut = it->second;
    } else {
      fut = prom.get_future().share();
      base_cache_.emplace(key, fut);
      owner = true;
    }
  }
  if (owner) {
    // Run outside the lock; concurrent callers of other cells proceed,
    // callers of this cell wait on the future.
    try {
      const AppResult r = runOnce(kind, app_.original(), prm, 1,
                                  /*free_cs_faults=*/false, app_.name);
      prom.set_value(r.stats.exec_cycles);
    } catch (...) {
      prom.set_exception(std::current_exception());
    }
  }
  return fut.get();
}

CellResult Experiment::run(PlatformKind kind, const VersionDesc& ver,
                           const AppParams& prm, int nprocs) {
  CellResult cell;
  cell.base_cycles = baseline(kind, prm);
  cell.app = runOnce(kind, ver, prm, nprocs, /*free_cs_faults=*/false,
                     app_.name);
  cell.cycles = cell.app.stats.exec_cycles;
  return cell;
}

namespace fmt {

std::string breakdown(const std::string& title, const RunStats& rs) {
  std::string out = "== " + title + " ==\n" + rs.breakdownTable();
  char line[256];
  const double tot = static_cast<double>(rs.exec_cycles);
  std::snprintf(line, sizeof line,
                "exec cycles: %llu   bucket shares: cmp %.1f%% cache %.1f%% "
                "data %.1f%% lock %.1f%% barrier %.1f%% handler %.1f%%\n",
                static_cast<unsigned long long>(rs.exec_cycles),
                100.0 * static_cast<double>(rs.bucketTotal(Bucket::Compute)) /
                    (tot * rs.nprocs()),
                100.0 *
                    static_cast<double>(rs.bucketTotal(Bucket::CacheStall)) /
                    (tot * rs.nprocs()),
                100.0 * static_cast<double>(rs.bucketTotal(Bucket::DataWait)) /
                    (tot * rs.nprocs()),
                100.0 * static_cast<double>(rs.bucketTotal(Bucket::LockWait)) /
                    (tot * rs.nprocs()),
                100.0 *
                    static_cast<double>(rs.bucketTotal(Bucket::BarrierWait)) /
                    (tot * rs.nprocs()),
                100.0 * static_cast<double>(rs.bucketTotal(Bucket::Handler)) /
                    (tot * rs.nprocs()));
  out += line;
  return out;
}

std::string speedupRow(const std::string& label, double svm, double smp,
                       double dsm) {
  char line[160];
  std::snprintf(line, sizeof line, "%-28s %8.2f %8.2f %8.2f\n", label.c_str(),
                svm, smp, dsm);
  return line;
}

}  // namespace fmt

}  // namespace rsvm
