#include "core/app.hpp"

#include <mutex>
#include <stdexcept>

namespace rsvm {

Registry& Registry::instance() {
  static Registry r;  // thread-safe magic-static initialization
  return r;
}

void Registry::add(AppDesc d) {
  if (d.versions.empty()) {
    throw std::invalid_argument("Registry: app without versions: " + d.name);
  }
  std::unique_lock lk(mu_);
  for (const auto& a : apps_) {
    if (a.name == d.name) return;  // idempotent registration
  }
  apps_.push_back(std::move(d));
}

const AppDesc* Registry::find(std::string_view name) const {
  std::shared_lock lk(mu_);
  for (const auto& a : apps_) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

}  // namespace rsvm
