#include "core/app.hpp"

#include <stdexcept>

namespace rsvm {

Registry& Registry::instance() {
  static Registry r;
  return r;
}

void Registry::add(AppDesc d) {
  if (find(d.name) != nullptr) return;  // idempotent registration
  if (d.versions.empty()) {
    throw std::invalid_argument("Registry: app without versions: " + d.name);
  }
  apps_.push_back(std::move(d));
}

const AppDesc* Registry::find(std::string_view name) const {
  for (const auto& a : apps_) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

}  // namespace rsvm
