#include "core/checkpoint.hpp"

#include "core/result_cache.hpp"

#include <unistd.h>

#include <stdexcept>
#include <vector>

namespace rsvm {

namespace {

/// Slurp a file ("rb"); missing file yields an empty string.
std::string readAll(const std::string& path) {
  std::string out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  char buf[1 << 14];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

}  // namespace

CheckpointLog::ScanResult CheckpointLog::scan(
    const std::string& path, std::vector<std::string>* keys) {
  ScanResult sr;
  const std::string bytes = readAll(path);
  std::size_t at = 0;
  while (at < bytes.size()) {
    std::string key;
    SweepResult r;
    std::size_t consumed = 0;
    if (!decodeResult(std::string_view(bytes).substr(at), &key, &r,
                      &consumed)) {
      break;  // torn or corrupt tail: everything before it is intact
    }
    at += consumed;
    ++sr.records;
    if (keys != nullptr) keys->push_back(std::move(key));
  }
  sr.valid_bytes = at;
  sr.discarded_bytes = bytes.size() - at;
  sr.torn_tail = sr.discarded_bytes > 0;
  return sr;
}

CheckpointLog::CheckpointLog(std::string path) : path_(std::move(path)) {
  const std::string bytes = readAll(path_);
  std::size_t at = 0;
  while (at < bytes.size()) {
    std::string key;
    SweepResult r;
    std::size_t consumed = 0;
    if (!decodeResult(std::string_view(bytes).substr(at), &key, &r,
                      &consumed)) {
      break;
    }
    at += consumed;
    ++loaded_.records;
    results_[std::move(key)] = std::move(r);
  }
  loaded_.valid_bytes = at;
  loaded_.discarded_bytes = bytes.size() - at;
  loaded_.torn_tail = loaded_.discarded_bytes > 0;

  // "a+b" would force appends to the true end even after truncation on
  // some libcs; open read-write and position explicitly instead.
  f_ = std::fopen(path_.c_str(), bytes.empty() ? "wb" : "r+b");
  if (f_ == nullptr) {
    throw std::runtime_error("checkpoint: cannot open '" + path_ + "'");
  }
  if (loaded_.torn_tail) {
    if (::ftruncate(::fileno(f_), static_cast<off_t>(at)) != 0) {
      std::fclose(f_);
      f_ = nullptr;
      throw std::runtime_error(
          "checkpoint: cannot discard torn tail of '" + path_ + "'");
    }
  }
  if (std::fseek(f_, static_cast<long>(at), SEEK_SET) != 0) {
    std::fclose(f_);
    f_ = nullptr;
    throw std::runtime_error("checkpoint: cannot seek in '" + path_ + "'");
  }
}

CheckpointLog::~CheckpointLog() {
  if (f_ != nullptr) std::fclose(f_);
}

const SweepResult* CheckpointLog::find(const std::string& key_text) const {
  const auto it = results_.find(key_text);
  return it == results_.end() ? nullptr : &it->second;
}

bool CheckpointLog::append(const std::string& key_text,
                           const SweepResult& r) {
  const std::string rec = encodeResult(key_text, r);
  std::lock_guard<std::mutex> lk(mu_);
  if (f_ == nullptr) return false;
  if (std::fwrite(rec.data(), 1, rec.size(), f_) != rec.size()) return false;
  if (std::fflush(f_) != 0) return false;
  ++appended_;
  return true;
}

}  // namespace rsvm
