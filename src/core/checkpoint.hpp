// Append-only sweep checkpoint manifest. While a sweep runs, every
// completed point is journaled as one self-delimiting, checksum-guarded
// record (the same binary codec as the result cache, core/
// result_cache.hpp). If the process is killed -- mid-sweep, mid-record
// -- restarting the same sweep with the same manifest path replays the
// journaled results and computes only what is missing: the loader scans
// the file, stops at the first torn or corrupt record, truncates the
// file back to the last intact record boundary, and resumes appending
// from there. Records are keyed by the point's canonical cache-key
// text, so a manifest is valid only for the exact engine revision,
// fiber backend, and point parameters that wrote it.
#pragma once

#include "core/sweep.hpp"

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace rsvm {

class CheckpointLog {
 public:
  /// Summary of one manifest scan (also available standalone via
  /// scan(), which never modifies the file).
  struct ScanResult {
    std::uint64_t records = 0;        ///< intact records found
    std::uint64_t valid_bytes = 0;    ///< offset of the last intact record end
    std::uint64_t discarded_bytes = 0;  ///< torn/corrupt tail dropped
    bool torn_tail = false;
  };

  /// Read-only scan of a manifest; `keys` (optional) receives the key
  /// text of every intact record in file order.
  static ScanResult scan(const std::string& path,
                         std::vector<std::string>* keys = nullptr);

  /// Opens (creating if absent) `path` for resume + append: loads every
  /// intact record, truncates a torn tail, positions for appending.
  /// Throws std::runtime_error if the file cannot be opened or
  /// truncated.
  explicit CheckpointLog(std::string path);
  ~CheckpointLog();

  CheckpointLog(const CheckpointLog&) = delete;
  CheckpointLog& operator=(const CheckpointLog&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const ScanResult& loaded() const { return loaded_; }

  /// The journaled result for a key, or nullptr. (Later records win if
  /// a key was journaled twice, e.g. by overlapping resumed runs.)
  [[nodiscard]] const SweepResult* find(const std::string& key_text) const;

  /// Journal one completed result (thread-safe; flushed per record so a
  /// kill loses at most the record being written, which the next
  /// resume's torn-tail scan discards). Returns false on I/O failure.
  bool append(const std::string& key_text, const SweepResult& r);

  [[nodiscard]] std::uint64_t appended() const { return appended_; }

 private:
  std::string path_;
  std::FILE* f_ = nullptr;
  ScanResult loaded_;
  std::unordered_map<std::string, SweepResult> results_;
  std::mutex mu_;
  std::uint64_t appended_ = 0;
};

}  // namespace rsvm
