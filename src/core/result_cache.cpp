#include "core/result_cache.hpp"

#include "sim/fiber.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <stdexcept>

namespace rsvm {

namespace {

constexpr std::uint32_t kMagic = 0x31435352;  // "RSC1" little-endian
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::string_view s, std::uint64_t h = kFnvOffset) {
  for (const char c : s) {
    h = (h ^ static_cast<unsigned char>(c)) * kFnvPrime;
  }
  return h;
}

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// --- little-endian scalar (de)serialization into a byte string ---

void putU32(std::string& out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out.append(b, 4);
}

void putU64(std::string& out, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

void putStr(std::string& out, std::string_view s) {
  putU32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

/// Sequential reader over a record payload; `ok` latches false on any
/// out-of-bounds read so the decoder can bail once at the end.
struct Reader {
  std::string_view s;
  std::size_t at = 0;
  bool ok = true;

  std::uint32_t u32() {
    if (at + 4 > s.size()) {
      ok = false;
      return 0;
    }
    std::uint32_t v;
    std::memcpy(&v, s.data() + at, 4);
    at += 4;
    return v;
  }
  std::uint64_t u64() {
    if (at + 8 > s.size()) {
      ok = false;
      return 0;
    }
    std::uint64_t v;
    std::memcpy(&v, s.data() + at, 8);
    at += 8;
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || at + n > s.size()) {
      ok = false;
      return {};
    }
    std::string v(s.data() + at, n);
    at += n;
    return v;
  }
};

/// Every uint64 field of a ProcStats, in declared order. Keeping the
/// list here (next to the codec) means a ProcStats change that forgets
/// to update it fails the round-trip unit test, not silently.
constexpr std::uint64_t ProcStats::* kProcFields[] = {
    &ProcStats::reads,          &ProcStats::writes,
    &ProcStats::l1_misses,      &ProcStats::l2_misses,
    &ProcStats::page_faults,    &ProcStats::write_faults,
    &ProcStats::diffs_created,  &ProcStats::diff_bytes,
    &ProcStats::remote_misses,  &ProcStats::local_misses,
    &ProcStats::invalidations_sent, &ProcStats::lock_acquires,
    &ProcStats::remote_lock_acquires, &ProcStats::barriers,
    &ProcStats::tasks_executed, &ProcStats::tasks_stolen,
    &ProcStats::allocs,
};

void appendDouble(std::string& out, const char* key, double v) {
  char buf[48];
  // %.17g round-trips every double exactly; trailing garbage-free.
  std::snprintf(buf, sizeof buf, "|%s=%.17g", key, v);
  out += buf;
}

bool readWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[1 << 14];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

/// mkdir -p for exactly one or two missing trailing components; enough
/// for <dir> and <dir>/<hh>. EEXIST is success (concurrent creators).
bool ensureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST) return true;
  if (errno != ENOENT) return false;
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos || slash == 0) return false;
  if (!ensureDir(path.substr(0, slash))) return false;
  return ::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST;
}

}  // namespace

const char* engineRev() {
#ifdef RSVM_ENGINE_REV
  return RSVM_ENGINE_REV;
#else
  return "dev";
#endif
}

std::string CacheKey::hex() const {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

bool cacheable(const SweepPoint& p) {
  return (!p.make_platform && !p.make_baseline) || !p.config.empty();
}

std::string cacheKeyText(const SweepPoint& p, std::string_view rev,
                         std::string_view fiber) {
  std::string k = "rsvm-cache-1";
  k += "|rev=";
  k += rev;
  k += "|app=" + p.app;
  k += "|ver=" + p.version;
  k += "|plat=";
  k += platformName(p.kind);
  k += "|config=" + p.config;
  k += "|basekey=" + (p.baseline_key.empty() ? p.config : p.baseline_key);
  k += "|procs=" + std::to_string(p.procs);
  k += "|n=" + std::to_string(p.params.n);
  k += "|iters=" + std::to_string(p.params.iters);
  k += "|block=" + std::to_string(p.params.block);
  k += "|seed=" + std::to_string(p.params.seed);
  appendDouble(k, "zipf", p.params.zipf);
  k += "|freecs=" + std::to_string(p.free_cs_faults ? 1 : 0);
  k += "|base=" + std::to_string(p.with_baseline ? 1 : 0);
  k += "|check=";
  k += p.check == CheckLevel::Oracle ? "oracle" : "off";
  k += "|fseed=" + std::to_string(p.fault_seed);
  k += "|fiber=";
  k += fiber;
  // Engine-threading mode, normalized (<=1 is the sequential scheduler).
  // Promised bit-identical, keyed defensively like the fiber backend: a
  // parallel-scheduler bug can make entries wrong, never serve wrong.
  k += "|ethreads=" +
       std::to_string(p.engine_threads > 1 ? p.engine_threads : 1);
  // Scheduler-discipline term, same defensive rationale. Configurations
  // that the original parallel engine ran (flat SVM, oracle off, no
  // fault plan, stock factory) keep their exact historical key text, so
  // warm fleet caches stay valid; configurations that became
  // parallel-eligible later (hardware platforms, oracle-attached runs,
  // custom-factory points such as clustered SVM) run the fenced-access
  // discipline and get a distinct term. Over-tagging a custom flat-SVM
  // config here merely recomputes it once -- self-consistent thereafter.
  const bool newly_parallel = p.kind != PlatformKind::SVM ||
                              p.check != CheckLevel::Off ||
                              static_cast<bool>(p.make_platform);
  if (p.engine_threads > 1 && p.fault_seed == 0 && newly_parallel) {
    k += "|shardmode=fence";
  }
  return k;
}

std::string cacheKeyText(const SweepPoint& p) {
  return cacheKeyText(p, engineRev(),
                      Fiber::backendName(Fiber::defaultBackend()));
}

CacheKey cacheKeyOf(std::string_view key_text) {
  CacheKey k;
  k.hi = fnv1a(key_text);
  // Second, independent digest: re-fold with a different offset, then
  // mix. Collisions are harmless (the stored key text is verified), the
  // 128 bits just keep accidental aliasing out of the filesystem.
  k.lo = splitmix(fnv1a(key_text, 0x9e3779b97f4a7c15ull) ^
                  (k.hi + key_text.size()));
  return k;
}

std::string encodeResult(std::string_view key_text, const SweepResult& r) {
  std::string payload;
  putStr(payload, key_text);
  putU32(payload, (r.app.correct ? 1u : 0u) | (r.timed_out ? 2u : 0u));
  putU64(payload, r.cycles);
  putU64(payload, r.base_cycles);
  putU64(payload, static_cast<std::uint64_t>(r.oracle_violations));
  putStr(payload, r.error);
  putStr(payload, r.app.note);
  putU64(payload, r.app.state_hash);
  putU64(payload, r.app.result_hash);
  putU64(payload, r.app.stats.exec_cycles);
  putU32(payload, static_cast<std::uint32_t>(r.app.stats.procs.size()));
  for (const ProcStats& ps : r.app.stats.procs) {
    for (const Cycles c : ps.buckets) putU64(payload, c);
    for (const auto field : kProcFields) putU64(payload, ps.*field);
  }

  std::string out;
  putU32(out, kMagic);
  putU32(out, static_cast<std::uint32_t>(payload.size()));
  putU64(out, fnv1a(payload));
  out += payload;
  return out;
}

bool decodeResult(std::string_view bytes, std::string* key_text,
                  SweepResult* out, std::size_t* consumed) {
  Reader head{bytes};
  const std::uint32_t magic = head.u32();
  const std::uint32_t len = head.u32();
  const std::uint64_t sum = head.u64();
  if (!head.ok || magic != kMagic || head.at + len > bytes.size()) {
    return false;
  }
  const std::string_view payload = bytes.substr(head.at, len);
  if (fnv1a(payload) != sum) return false;

  Reader rd{payload};
  SweepResult r;
  *key_text = rd.str();
  const std::uint32_t flags = rd.u32();
  r.app.correct = (flags & 1u) != 0;
  r.timed_out = (flags & 2u) != 0;
  r.cycles = rd.u64();
  r.base_cycles = rd.u64();
  r.oracle_violations = static_cast<std::size_t>(rd.u64());
  r.error = rd.str();
  r.app.note = rd.str();
  r.app.state_hash = rd.u64();
  r.app.result_hash = rd.u64();
  r.app.stats.exec_cycles = rd.u64();
  const std::uint32_t nprocs = rd.u32();
  if (!rd.ok || nprocs > 1u << 20) return false;
  r.app.stats.procs.resize(nprocs);
  for (ProcStats& ps : r.app.stats.procs) {
    for (Cycles& c : ps.buckets) c = rd.u64();
    for (const auto field : kProcFields) ps.*field = rd.u64();
  }
  if (!rd.ok || rd.at != payload.size()) return false;
  *out = std::move(r);
  if (consumed != nullptr) *consumed = head.at + len;
  return true;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty() || !ensureDir(dir_)) {
    throw std::runtime_error("result cache: cannot create directory '" +
                             dir_ + "'");
  }
}

std::string ResultCache::entryPath(const CacheKey& key) const {
  const std::string hex = key.hex();
  return dir_ + "/" + hex.substr(0, 2) + "/" + hex + ".rc";
}

std::optional<SweepResult> ResultCache::lookup(const SweepPoint& p) {
  if (!cacheable(p)) {
    uncacheable_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const std::string key = cacheKeyText(p);
  std::string bytes;
  if (!readWholeFile(entryPath(cacheKeyOf(key)), &bytes)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::string stored_key;
  SweepResult r;
  std::size_t consumed = 0;
  if (!decodeResult(bytes, &stored_key, &r, &consumed) ||
      consumed != bytes.size() || stored_key != key) {
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  r.cached = true;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return r;
}

bool ResultCache::insert(const SweepPoint& p, const SweepResult& r) {
  if (!r.ok() || r.timed_out || !cacheable(p)) return false;
  const std::string key = cacheKeyText(p);
  const std::string path = entryPath(cacheKeyOf(key));
  const std::size_t slash = path.find_last_of('/');
  if (!ensureDir(path.substr(0, slash))) return false;

  // Atomic publish: a reader either sees no entry or a complete one.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string body = encodeResult(key, r);
  const bool wrote =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

ResultCache::GcStats ResultCache::gc(std::uint64_t max_bytes,
                                     double max_age_seconds) {
  struct Entry {
    std::string path;
    std::uint64_t bytes;
    std::time_t mtime;
  };
  std::vector<Entry> entries;

  // Scan <dir>/<hh>/*.rc. Anything else in the tree (in-flight ".tmp."
  // files, stray names) is left alone.
  DIR* top = ::opendir(dir_.c_str());
  if (top == nullptr) return {};
  while (const dirent* d = ::readdir(top)) {
    const std::string sub = d->d_name;
    if (sub == "." || sub == "..") continue;
    const std::string subpath = dir_ + "/" + sub;
    DIR* leaf = ::opendir(subpath.c_str());
    if (leaf == nullptr) continue;  // not a directory
    while (const dirent* e = ::readdir(leaf)) {
      const std::string name = e->d_name;
      if (name.size() < 3 || name.compare(name.size() - 3, 3, ".rc") != 0) {
        continue;
      }
      Entry ent;
      ent.path = subpath + "/" + name;
      struct stat st{};
      if (::stat(ent.path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) {
        continue;
      }
      ent.bytes = static_cast<std::uint64_t>(st.st_size);
      ent.mtime = st.st_mtime;
      entries.push_back(std::move(ent));
    }
    ::closedir(leaf);
  }
  ::closedir(top);

  GcStats gs;
  gs.scanned = entries.size();
  for (const Entry& e : entries) gs.bytes_before += e.bytes;
  gs.bytes_after = gs.bytes_before;

  // Oldest first; path tie-break keeps the order reproducible even when
  // a whole sweep's entries share one mtime second.
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path < b.path;
  });

  const std::time_t now = std::time(nullptr);
  for (const Entry& e : entries) {
    const bool too_old =
        max_age_seconds > 0.0 &&
        std::difftime(now, e.mtime) > max_age_seconds;
    const bool over_budget = max_bytes > 0 && gs.bytes_after > max_bytes;
    // Sorted oldest-first: once an entry is young enough and the budget
    // fits, every remaining entry is newer, so nothing else can qualify.
    if (!too_old && !over_budget) break;
    if (std::remove(e.path.c_str()) == 0 || errno == ENOENT) {
      ++gs.evicted;
      gs.bytes_after -= e.bytes;
    }
  }
  return gs;
}

ResultCache::Stats ResultCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.corrupt = corrupt_.load(std::memory_order_relaxed);
  s.uncacheable = uncacheable_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace rsvm
