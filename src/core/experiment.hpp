// Experiment driver: runs (platform x application x version x processor
// count) cells, computes speedups the way the paper does -- against the
// uniprocessor execution time of the *original* version on the same
// platform -- and formats the tables/figures.
#pragma once

#include "core/app.hpp"

#include <map>
#include <optional>
#include <string>

namespace rsvm {

struct CellResult {
  AppResult app;        ///< stats + correctness of the parallel run
  Cycles cycles = 0;    ///< parallel execution time
  Cycles base_cycles = 0;  ///< uniprocessor time of the original version
  [[nodiscard]] double speedup() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(base_cycles) /
                             static_cast<double>(cycles);
  }
};

class Experiment {
 public:
  explicit Experiment(const AppDesc& app) : app_(app) {}

  /// Run one version on one platform; uniprocessor baselines (original
  /// version, same platform, same params) are computed once and cached.
  CellResult run(PlatformKind kind, const VersionDesc& ver,
                 const AppParams& prm, int nprocs);

  /// Raw single run without baseline (e.g. for breakdown figures).
  static AppResult runOnce(PlatformKind kind, const VersionDesc& ver,
                           const AppParams& prm, int nprocs,
                           bool free_cs_faults = false);

  const AppDesc& app() const { return app_; }

 private:
  Cycles baseline(PlatformKind kind, const AppParams& prm);

  const AppDesc& app_;
  std::map<std::pair<int, int>, Cycles> base_cache_;  ///< (kind, n) -> T1
};

/// Pretty-printers used by the bench binaries.
namespace fmt {

/// "fig 3"-style per-processor breakdown, plus a totals row.
std::string breakdown(const std::string& title, const RunStats& rs);

/// One line of a speedup table.
std::string speedupRow(const std::string& label, double svm, double smp,
                       double dsm);

}  // namespace fmt

}  // namespace rsvm
