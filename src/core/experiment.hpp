// Experiment driver: runs (platform x application x version x processor
// count) cells, computes speedups the way the paper does -- against the
// uniprocessor execution time of the *original* version on the same
// platform -- and formats the tables/figures.
#pragma once

#include "core/app.hpp"

#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace rsvm {

struct CellResult {
  AppResult app;        ///< stats + correctness of the parallel run
  Cycles cycles = 0;    ///< parallel execution time
  Cycles base_cycles = 0;  ///< uniprocessor time of the original version
  [[nodiscard]] double speedup() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(base_cycles) /
                             static_cast<double>(cycles);
  }
};

/// Concurrency-safe: run() may be called from several host threads at
/// once (e.g. a SweepRunner fanning a figure out over a thread pool);
/// each baseline is computed exactly once and other threads wait on it.
class Experiment {
 public:
  explicit Experiment(const AppDesc& app) : app_(app) {}

  /// Run one version on one platform; uniprocessor baselines (original
  /// version, same platform, same params) are computed once and cached.
  CellResult run(PlatformKind kind, const VersionDesc& ver,
                 const AppParams& prm, int nprocs);

  /// Raw single run without baseline (e.g. for breakdown figures).
  /// `app_name`, when provided, is included in the error thrown on an
  /// incorrect result so sweep failures are attributable.
  static AppResult runOnce(PlatformKind kind, const VersionDesc& ver,
                           const AppParams& prm, int nprocs,
                           bool free_cs_faults = false,
                           std::string_view app_name = {});

  const AppDesc& app() const { return app_; }

 private:
  Cycles baseline(PlatformKind kind, const AppParams& prm);

  const AppDesc& app_;
  std::mutex mu_;  ///< guards base_cache_
  /// (kind, n) -> T1, shared-future so concurrent callers of the same
  /// cell block on the one in-flight baseline instead of recomputing.
  std::map<std::pair<int, int>, std::shared_future<Cycles>> base_cache_;
};

/// Pretty-printers used by the bench binaries.
namespace fmt {

/// "fig 3"-style per-processor breakdown, plus a totals row.
std::string breakdown(const std::string& title, const RunStats& rs);

/// One line of a speedup table.
std::string speedupRow(const std::string& label, double svm, double smp,
                       double dsm);

}  // namespace fmt

}  // namespace rsvm
