// Application/version registry: the paper's study object is a set of
// applications, each existing in several restructured versions grouped
// into optimization classes (Orig / P+A / DS / Alg). Benches and tests
// look versions up here and run them on any platform.
#pragma once

#include "runtime/platform.hpp"
#include "sim/stats.hpp"

#include <cstdint>
#include <deque>
#include <functional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rsvm {

/// Generic problem-size knobs, interpreted per application.
struct AppParams {
  int n = 0;           ///< primary size (matrix/grid dim, particles, keys)
  int iters = 1;       ///< time steps / iterations
  int block = 16;      ///< block/tile size where applicable
  std::uint64_t seed = 42;

  /// Key-distribution skew for request-serving workloads (apps/server):
  /// 0 = uniform (the default, bit-compatible with builds that predate
  /// the knob), theta in (0, 1) = Zipf-like, hotter as theta -> 1.
  /// Ignored by apps without a key-popularity notion, but carried in
  /// every sweep/cache key so skew levels are distinct cacheable points.
  double zipf = 0.0;
};

struct AppResult {
  RunStats stats;
  bool correct = true;
  std::string note;  ///< human-readable correctness detail

  /// Optional differential-testing digests (0 = the app does not provide
  /// them). Apps that fill these promise the values are functions of the
  /// *final data-structure contents* and the *per-operation results*
  /// only -- independent of the platform, processor count, fiber
  /// backend, and scheduling -- so a test harness can assert that every
  /// protocol computed the same answer (tests/common/differential.hpp).
  /// Order-sensitive quantities (allocation order, chain order, which
  /// processor ran a stolen task) must be folded in commutatively.
  std::uint64_t state_hash = 0;   ///< digest of final shared-data state
  std::uint64_t result_hash = 0;  ///< commutative digest of per-op results
};

/// The paper's optimization classes (section 3).
enum class OptClass { Orig, PA, DS, Alg };

inline const char* optClassName(OptClass c) {
  switch (c) {
    case OptClass::Orig: return "Orig";
    case OptClass::PA: return "P/A";
    case OptClass::DS: return "DS";
    case OptClass::Alg: return "Alg";
  }
  return "?";
}

struct VersionDesc {
  std::string name;     ///< e.g. "2d", "4d-aligned", "rowwise"
  OptClass cls;
  std::string summary;  ///< what this restructuring does
  std::function<AppResult(Platform&, const AppParams&)> run;
};

struct AppDesc {
  std::string name;
  std::string summary;
  AppParams tiny;    ///< integration-test scale (sub-second)
  AppParams small;   ///< default bench scale (seconds)
  AppParams paper;   ///< the paper's input scale
  std::vector<VersionDesc> versions;

  [[nodiscard]] const VersionDesc* version(std::string_view v) const {
    for (const auto& ver : versions) {
      if (ver.name == v) return &ver;
    }
    return nullptr;
  }
  [[nodiscard]] const VersionDesc& original() const { return versions.front(); }
};

/// Thread-safe application registry. Registration and lookup may race
/// freely (host-parallel sweeps look versions up from worker threads);
/// storage is a deque so descriptors returned by find()/all() stay
/// valid across later registrations.
class Registry {
 public:
  static Registry& instance();

  void add(AppDesc d);
  [[nodiscard]] const AppDesc* find(std::string_view name) const;

  /// Snapshot view of the registered apps. Descriptor references remain
  /// stable, but iterate only after registration has quiesced (benches
  /// call registerAllApps() before any sweep starts).
  [[nodiscard]] const std::deque<AppDesc>& all() const { return apps_; }

 private:
  mutable std::shared_mutex mu_;
  std::deque<AppDesc> apps_;
};

/// Populate the registry with every application (idempotent). Defined in
/// apps/register_all.cpp so the app library controls what is available.
void registerAllApps();

}  // namespace rsvm
