#include "core/sweep.hpp"

#include "core/checkpoint.hpp"
#include "core/result_cache.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace rsvm {

namespace {

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

std::string describePoint(const SweepPoint& p) {
  std::string s = p.app + "/" + p.version + " on " + platformName(p.kind);
  if (!p.config.empty()) s += "[" + p.config + "]";
  s += " with " + std::to_string(p.procs) + " procs (n=" +
       std::to_string(p.params.n) + ")";
  if (p.params.zipf > 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, ", zipf=%.3g", p.params.zipf);
    s += buf;
  }
  return s;
}

SweepRunner::SweepRunner(int jobs)
    : SweepRunner([&] {
        Config c;
        c.jobs = jobs;
        return c;
      }()) {}

SweepRunner::SweepRunner(const Config& cfg) : cfg_(cfg) {
  if (cfg_.jobs <= 0) cfg_.jobs = defaultJobs();
  if (cfg_.engine_threads < 1) cfg_.engine_threads = 1;
  if (cfg_.shard_count < 1) {
    throw std::invalid_argument("sweep: shard_count must be >= 1");
  }
  if (cfg_.shard_index < 0 || cfg_.shard_index >= cfg_.shard_count) {
    throw std::invalid_argument(
        "sweep: shard_index " + std::to_string(cfg_.shard_index) +
        " out of range for " + std::to_string(cfg_.shard_count) + " shards");
  }
  if (!cfg_.cache_dir.empty()) {
    cache_ = std::make_unique<ResultCache>(cfg_.cache_dir);
  }
  if (!cfg_.checkpoint.empty()) {
    ckpt_ = std::make_unique<CheckpointLog>(cfg_.checkpoint);
  }
}

SweepRunner::~SweepRunner() = default;

int SweepRunner::defaultJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

Cycles SweepRunner::baseline(const SweepPoint& p) {
  const BaselineKey key{static_cast<int>(p.kind), p.app,
                        p.baseline_key.empty() ? p.config : p.baseline_key,
                        p.params.n, p.params.iters, p.params.block,
                        p.params.seed, p.params.zipf};
  std::shared_future<Cycles> fut;
  std::promise<Cycles> prom;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (const auto it = base_cache_.find(key); it != base_cache_.end()) {
      fut = it->second;
    } else {
      fut = prom.get_future().share();
      base_cache_.emplace(key, fut);
      owner = true;
    }
  }
  if (owner) {
    // Compute outside the lock so other baselines proceed concurrently;
    // waiters block on the shared future, not on the cache mutex.
    try {
      const AppDesc* app = Registry::instance().find(p.app);
      if (app == nullptr) {
        throw std::runtime_error("sweep baseline: unknown app '" + p.app +
                                 "'");
      }
      const auto& factory = p.make_baseline ? p.make_baseline
                                            : p.make_platform;
      auto plat = factory ? factory(1) : Platform::create(p.kind, 1);
      const AppResult r = app->original().run(*plat, p.params);
      if (!r.correct) {
        throw std::runtime_error("sweep baseline: incorrect result from " +
                                 p.app + "/" + app->original().name + " on " +
                                 platformName(p.kind) + " uniprocessor (n=" +
                                 std::to_string(p.params.n) + "): " + r.note);
      }
      prom.set_value(r.stats.exec_cycles);
    } catch (...) {
      prom.set_exception(std::current_exception());
    }
  }
  return fut.get();
}

int SweepRunner::effectiveEngineThreads(const SweepPoint& p) const {
  if (p.engine_threads > 0) return p.engine_threads;
  if (cfg_.engine_threads > 1 && p.procs >= cfg_.engine_threads_min_procs) {
    return cfg_.engine_threads;
  }
  return 1;
}

SweepResult SweepRunner::attemptPoint(const SweepPoint& p) {
  SweepResult res;
  try {
    const AppDesc* app = Registry::instance().find(p.app);
    if (app == nullptr) {
      throw std::runtime_error("sweep: unknown app '" + p.app + "'");
    }
    const VersionDesc* ver = app->version(p.version);
    if (ver == nullptr) {
      throw std::runtime_error("sweep: unknown version '" + p.version +
                               "' of app '" + p.app + "'");
    }
    if (p.with_baseline) res.base_cycles = baseline(p);
    auto plat = p.make_platform ? p.make_platform(p.procs)
                                : Platform::create(p.kind, p.procs);
    plat->free_cs_faults = p.free_cs_faults;
    if (p.check != CheckLevel::Off) plat->setCheckLevel(p.check);
    if (p.fault_seed != 0) plat->setFaultPlan(p.fault_seed);
    if (p.deadline_ms > 0.0) plat->engine().setWatchdog(0, p.deadline_ms);
    // runPoint normalized engine_threads to the effective value; the
    // platform still falls back to sequential when a fault plan is
    // attached (its RNG order is the sequential schedule), and runs
    // fenced accesses when the platform or an attached observer needs
    // commit-order replay (bit-identical either way; see platform.cpp).
    plat->setEngineThreads(p.engine_threads > 1 ? p.engine_threads : 1);
    res.app = ver->run(*plat, p.params);
    res.cycles = res.app.stats.exec_cycles;
    if (!res.app.correct) {
      res.error = "incorrect result from " + describePoint(p) + ": " +
                  res.app.note;
    }
    if (const OracleReport* rep = plat->oracleReport()) {
      res.oracle_violations = rep->total;
      if (!rep->clean()) {
        if (!res.error.empty()) res.error += "; ";
        res.error +=
            "coherence oracle at " + describePoint(p) + ": " + rep->summary();
      }
    }
  } catch (const EngineWatchdogError& e) {
    res.timed_out = true;
    res.error = describePoint(p) + ": " + e.what();
  } catch (const std::exception& e) {
    res.error = describePoint(p) + ": " + e.what();
  }
  return res;
}

SweepResult SweepRunner::runPoint(const SweepPoint& point) {
  const auto t0 = std::chrono::steady_clock::now();
  // Normalize the threading mode before anything keys or runs the
  // point, so the cache key and the execution can never disagree.
  SweepPoint p = point;
  p.engine_threads = effectiveEngineThreads(point);

  // Content-addressed fast paths. The checkpoint manifest (this exact
  // sweep, resumed) wins over the shared cache; both serve bit-identical
  // simulated fields by construction, so the only observable difference
  // from a recompute is the host wall-clock.
  const bool keyed = (cache_ || ckpt_) && cacheable(p);
  const std::string key = keyed ? cacheKeyText(p) : std::string();
  if (ckpt_ && keyed) {
    if (const SweepResult* hit = ckpt_->find(key)) {
      SweepResult res = *hit;
      res.resumed = true;
      res.wall_ms = msSince(t0);
      {
        std::lock_guard<std::mutex> lk(fleet_mu_);
        ++fleet_.resumed;
      }
      return res;
    }
  }
  if (cache_ && keyed) {
    if (auto hit = cache_->lookup(p)) {
      SweepResult res = std::move(*hit);
      // Journal cache hits too: a resume must not depend on the cache
      // still containing (or being pointed at) the same entries.
      if (ckpt_) ckpt_->append(key, res);
      res.wall_ms = msSince(t0);
      {
        std::lock_guard<std::mutex> lk(fleet_mu_);
        ++fleet_.cache_hits;
      }
      return res;
    }
  }

  SweepResult res = attemptPoint(p);
  // Fault-seeded points get one retry. The simulation itself is
  // deterministic per seed, but the deadline is host wall-clock: a
  // genuine violation fails identically, while a timeout caused by a
  // loaded host machine gets a second chance before the point is
  // reported as an error record.
  if (!res.ok() && p.fault_seed != 0) {
    SweepResult again = attemptPoint(p);
    again.retries = res.retries + 1;
    res = std::move(again);
  }
  if (keyed && res.ok() && !res.timed_out) {
    if (cache_ && cache_->insert(p, res)) {
      std::lock_guard<std::mutex> lk(fleet_mu_);
      ++fleet_.stores;
    }
    if (ckpt_) ckpt_->append(key, res);
  }
  {
    std::lock_guard<std::mutex> lk(fleet_mu_);
    ++fleet_.computed;
    if (!keyed && (cache_ || ckpt_)) ++fleet_.uncacheable;
  }
  res.wall_ms = msSince(t0);
  return res;
}

std::vector<SweepResult> SweepRunner::run(
    const std::vector<SweepPoint>& points) {
  fleet_ = FleetStats{};
  std::vector<SweepResult> out(points.size());
  if (points.empty()) return out;

  // Deterministic round-robin shard partition: point i belongs to shard
  // i % shard_count. Every point lands in exactly one shard, and
  // bench/sweep_merge re-interleaves shard reports by the same rule.
  std::vector<std::size_t> mine;
  mine.reserve(points.size() / static_cast<std::size_t>(cfg_.shard_count) +
               1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (cfg_.shard_count > 1 &&
        static_cast<int>(i % static_cast<std::size_t>(cfg_.shard_count)) !=
            cfg_.shard_index) {
      out[i].skipped = true;
      ++fleet_.shard_skipped;
    } else {
      mine.push_back(i);
    }
  }
  if (mine.empty()) return out;

  // Host-thread budget shared by inter-point and intra-point
  // parallelism: the pool has cfg_.jobs permits, a point occupies
  // min(engine_threads, jobs) of them while it runs. Small points keep
  // packing one-per-permit; a big point running its engine on T threads
  // displaces T small ones instead of oversubscribing the host.
  struct Budget {
    std::mutex mu;
    std::condition_variable cv;
    int avail = 0;
    void acquire(int n) {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return avail >= n; });
      avail -= n;
    }
    void release(int n) {
      {
        std::lock_guard<std::mutex> lk(mu);
        avail += n;
      }
      cv.notify_all();
    }
  } budget;
  budget.avail = cfg_.jobs;

  std::atomic<std::size_t> next{0};
  const auto work = [&] {
    for (;;) {
      const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= mine.size()) return;
      const std::size_t i = mine[k];
      const int permits =
          std::min(effectiveEngineThreads(points[i]), cfg_.jobs);
      budget.acquire(permits);
      out[i] = runPoint(points[i]);
      budget.release(permits);
    }
  };
  const int nworkers =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(cfg_.jobs), mine.size()));
  if (nworkers <= 1) {
    work();  // run inline: zero thread overhead, trivially deterministic
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(nworkers));
    for (int t = 0; t < nworkers; ++t) workers.emplace_back(work);
    for (auto& t : workers) t.join();
  }
  if (cache_) {
    const ResultCache::Stats cs = cache_->stats();
    fleet_.cache_corrupt = cs.corrupt;
  }
  return out;
}

}  // namespace rsvm
