// The simulated global shared address space. Applications compute on real
// host memory; a SimAddr maps 1:1 onto an offset in a lazily-committed
// arena, so the simulator can translate addresses both ways at zero cost.
#pragma once

#include "sim/types.hpp"

#include <cstddef>

namespace rsvm {

class AddressSpace {
 public:
  /// Reserve (but do not commit) `capacity` bytes of backing store.
  explicit AddressSpace(std::size_t capacity = kDefaultCapacity);
  ~AddressSpace();

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  /// Allocate `bytes` with the given alignment (power of two).
  SimAddr allocate(std::size_t bytes, std::size_t align);

  /// Translate a simulated address to its host backing pointer.
  [[nodiscard]] std::byte* host(SimAddr a) const { return base_ + a; }

  template <typename T>
  [[nodiscard]] T* hostAs(SimAddr a) const {
    return reinterpret_cast<T*>(base_ + a);
  }

  [[nodiscard]] std::size_t used() const { return next_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  static constexpr std::size_t kDefaultCapacity = 2ull << 30;  // 2 GiB

 private:
  std::byte* base_ = nullptr;
  std::size_t capacity_ = 0;
  // Skip page 0 so SimAddr 0 can serve as a null-like sentinel.
  std::size_t next_ = 4096;
};

}  // namespace rsvm
