// Set-associative cache tag model with per-line coherence state and true
// LRU within a set. Used for both levels of every platform's hierarchy;
// the coherence protocols drive state transitions through probe /
// invalidate / downgrade, so the same model serves the SVM node caches,
// the CC-NUMA MSI caches, and the snooping SMP caches.
#pragma once

#include "sim/types.hpp"

#include <cstdint>
#include <vector>

namespace rsvm {

enum class LineState : std::uint8_t { Invalid = 0, Shared, Modified };

struct CacheConfig {
  std::uint32_t size_bytes = 0;
  std::uint32_t line_bytes = 0;
  std::uint32_t assoc = 0;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  struct AccessResult {
    bool hit = false;             ///< tag present and state sufficient
    bool upgrade = false;         ///< hit in Shared but a write was requested
    bool writeback = false;       ///< a Modified victim was evicted
    SimAddr victim_addr = 0;      ///< line address of the evicted victim
  };

  /// Look up `addr` for a read or write. On a miss the line is *not*
  /// filled; call fill() once the protocol has obtained it (possibly
  /// after eviction, reported here). On a write hit in Shared state the
  /// result reports `upgrade`; the protocol decides the cost and then
  /// calls setState().
  AccessResult access(SimAddr addr, bool write);

  /// Insert the line for `addr` in the given state, evicting the LRU way.
  /// Returns true (and the victim line address) if a Modified victim was
  /// written back.
  bool fill(SimAddr addr, LineState st, SimAddr* victim_addr);

  [[nodiscard]] LineState probe(SimAddr addr) const;
  void setState(SimAddr addr, LineState st);
  /// Remove the line if present; returns its prior state.
  LineState invalidate(SimAddr addr);
  /// M -> S transition; returns true if the line was Modified.
  bool downgrade(SimAddr addr);
  /// Invalidate every line that overlaps [base, base+len).
  void invalidateRange(SimAddr base, std::size_t len);

  [[nodiscard]] SimAddr lineAddr(SimAddr a) const { return a & ~line_mask_; }
  [[nodiscard]] std::uint32_t lineBytes() const { return cfg_.line_bytes; }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }

  void clear();

  // ---- access-fast-path support (runtime/platform.hpp) ----
  //
  // The per-processor line-permission filter caches a line's way index
  // and revalidates it on every use directly against the way array: the
  // way must still hold the line's tag in a sufficient state. Any
  // protocol action that reduces the line's permission (invalidate,
  // downgrade, eviction by fill, clear) changes exactly that tag or
  // state, so a stale filter entry can never authorize an access the
  // slow path would not.

  struct Way {
    std::uint64_t tag = 0;
    // Higher = more recently used. 64-bit: a 32-bit tick wraps after ~4B
    // touches, at which point the most-recently-used way compares as
    // least-recently-used and LRU inverts (see
    // CacheTest.LruTickSurvivesUint32Wraparound).
    std::uint64_t lru = 0;
    LineState state = LineState::Invalid;
  };

  static constexpr std::uint32_t kNoWay = 0xFFFFFFFFu;

  /// Index of the way currently holding `addr`, or kNoWay. Indices stay
  /// valid for the cache's lifetime (the way array never reallocates),
  /// but the *occupant* of a way can change at any fill.
  [[nodiscard]] std::uint32_t findWayIndex(SimAddr a) const;

  /// Raw way array (num_sets * assoc; stable for the cache's lifetime).
  /// The fast path revalidates and LRU-touches ways through this pointer
  /// without re-running the associative search or this extra call frame.
  [[nodiscard]] Way* fastWays() { return ways_.data(); }

  /// The global LRU tick, advanced on every touch; the fast path bumps
  /// it through this pointer exactly as a slow-path hit would.
  [[nodiscard]] std::uint64_t* fastLruTick() { return &lru_tick_; }

  /// Test hook: preload the global LRU tick (wraparound regression test).
  void seedLruTick(std::uint64_t t) { lru_tick_ = t; }

 private:

  [[nodiscard]] std::size_t setIndex(SimAddr a) const {
    return (a >> line_shift_) & set_mask_;
  }
  [[nodiscard]] std::uint64_t tagOf(SimAddr a) const { return a >> line_shift_; }

  Way* find(SimAddr a);
  [[nodiscard]] const Way* find(SimAddr a) const;
  void touch(std::size_t set, Way& w);

  CacheConfig cfg_;
  std::uint32_t line_shift_ = 0;
  SimAddr line_mask_ = 0;
  std::size_t num_sets_ = 0;
  std::size_t set_mask_ = 0;
  std::uint64_t lru_tick_ = 0;
  std::vector<Way> ways_;  // num_sets_ * assoc
};

}  // namespace rsvm
