#include "mem/cache.hpp"

#include <bit>
#include <stdexcept>

namespace rsvm {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  if (cfg.line_bytes == 0 || !std::has_single_bit(cfg.line_bytes)) {
    throw std::invalid_argument("Cache: line size must be a power of two");
  }
  if (cfg.assoc == 0 || cfg.size_bytes % (cfg.line_bytes * cfg.assoc) != 0) {
    throw std::invalid_argument("Cache: size must divide into sets");
  }
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(cfg.line_bytes));
  line_mask_ = cfg.line_bytes - 1;
  num_sets_ = cfg.size_bytes / (cfg.line_bytes * cfg.assoc);
  if (!std::has_single_bit(num_sets_)) {
    throw std::invalid_argument("Cache: number of sets must be a power of two");
  }
  set_mask_ = num_sets_ - 1;
  ways_.resize(num_sets_ * cfg.assoc);
}

Cache::Way* Cache::find(SimAddr a) {
  const std::uint64_t tag = tagOf(a);
  Way* base = &ways_[setIndex(a) * cfg_.assoc];
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    if (base[w].state != LineState::Invalid && base[w].tag == tag) {
      return &base[w];
    }
  }
  return nullptr;
}

const Cache::Way* Cache::find(SimAddr a) const {
  return const_cast<Cache*>(this)->find(a);
}

std::uint32_t Cache::findWayIndex(SimAddr a) const {
  const std::uint64_t tag = tagOf(a);
  const std::size_t base = setIndex(a) * cfg_.assoc;
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    const Way& way = ways_[base + w];
    if (way.state != LineState::Invalid && way.tag == tag) {
      return static_cast<std::uint32_t>(base + w);
    }
  }
  return kNoWay;
}

void Cache::touch(std::size_t /*set*/, Way& w) { w.lru = ++lru_tick_; }

Cache::AccessResult Cache::access(SimAddr addr, bool write) {
  AccessResult r;
  if (Way* w = find(addr)) {
    touch(setIndex(addr), *w);
    if (write && w->state == LineState::Shared) {
      r.hit = true;
      r.upgrade = true;
    } else {
      r.hit = true;
      if (write) w->state = LineState::Modified;
    }
  }
  return r;
}

bool Cache::fill(SimAddr addr, LineState st, SimAddr* victim_addr) {
  const std::size_t set = setIndex(addr);
  Way* base = &ways_[set * cfg_.assoc];
  Way* victim = nullptr;
  for (std::uint32_t w = 0; w < cfg_.assoc; ++w) {
    if (base[w].state == LineState::Invalid) {
      victim = &base[w];
      break;
    }
    if (victim == nullptr || base[w].lru < victim->lru) victim = &base[w];
  }
  bool wb = false;
  if (victim->state == LineState::Modified) {
    wb = true;
    if (victim_addr != nullptr) {
      *victim_addr = (victim->tag << line_shift_);
    }
  }
  victim->tag = tagOf(addr);
  victim->state = st;
  touch(set, *victim);
  return wb;
}

LineState Cache::probe(SimAddr addr) const {
  const Way* w = find(addr);
  return w != nullptr ? w->state : LineState::Invalid;
}

void Cache::setState(SimAddr addr, LineState st) {
  if (Way* w = find(addr)) w->state = st;
}

LineState Cache::invalidate(SimAddr addr) {
  if (Way* w = find(addr)) {
    LineState prior = w->state;
    w->state = LineState::Invalid;
    return prior;
  }
  return LineState::Invalid;
}

bool Cache::downgrade(SimAddr addr) {
  if (Way* w = find(addr); w != nullptr && w->state == LineState::Modified) {
    w->state = LineState::Shared;
    return true;
  }
  return false;
}

void Cache::invalidateRange(SimAddr base, std::size_t len) {
  const SimAddr first = lineAddr(base);
  const SimAddr last = lineAddr(base + len - 1);
  for (SimAddr a = first; a <= last; a += cfg_.line_bytes) {
    invalidate(a);
  }
}

void Cache::clear() {
  for (Way& w : ways_) w = Way{};
  lru_tick_ = 0;
}

}  // namespace rsvm
