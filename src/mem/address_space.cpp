#include "mem/address_space.hpp"

#include <sys/mman.h>

#include <new>
#include <stdexcept>

namespace rsvm {

AddressSpace::AddressSpace(std::size_t capacity) : capacity_(capacity) {
  void* p = ::mmap(nullptr, capacity, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (p == MAP_FAILED) throw std::bad_alloc();
  base_ = static_cast<std::byte*>(p);
}

AddressSpace::~AddressSpace() {
  if (base_ != nullptr) ::munmap(base_, capacity_);
}

SimAddr AddressSpace::allocate(std::size_t bytes, std::size_t align) {
  if (align == 0 || (align & (align - 1)) != 0) {
    throw std::invalid_argument("AddressSpace: alignment must be power of 2");
  }
  std::size_t start = (next_ + align - 1) & ~(align - 1);
  if (start + bytes > capacity_) {
    throw std::bad_alloc();
  }
  next_ = start + bytes;
  return static_cast<SimAddr>(start);
}

}  // namespace rsvm
